(** The paper's four-model training pipeline (Fig. 3):

    Stage 1 — MODEL-ZERO: GRPO on the base model with generic prompts.
    Rewards are sparse (most rollouts fail Alive), so the run doubles as a
    {e diagnostic-augmented sample generator}: every failed rollout is kept,
    with Alive's verdict and message, as a correction sample.

    Stage 2 — WARM-UP: SFT from the pretrained base on first-time samples
    (instcombine traces) plus Model-Zero's correction samples, teaching
    rudimentary Alive2 emulation.  Then MODEL-CORRECTNESS: GRPO with
    augmented prompts, reward = Eq. 1 (answer) + Eq. 2 (CoT agreement).

    Stage 3 — MODEL-LATENCY: incremental GRPO with the latency reward
    (Eq. 4), labels dropped, correctness kept in the reward via Alive. *)

module Model = Veriopt_llm.Model
module Prompt = Veriopt_llm.Prompt
module Diag = Veriopt_llm.Diag
module Alive = Veriopt_alive.Alive
module Suite = Veriopt_data.Suite
module Latency = Veriopt_cost.Latency
module Par = Veriopt_par.Par
module Fault = Veriopt_fault.Fault
module Engine = Veriopt_alive.Engine

(* Group scoring below runs on the Par pool: generation (which touches the
   model's parameter table) and GRPO updates stay sequential; only the
   verifier-bound reward computation — the hot path — fans out.  Rewards are
   deterministic and order-preserving, so training trajectories are
   identical at any pool size. *)

type options = {
  grpo_steps : int;
  group_size : int;
  learning_rate : float;
  sft_epochs : int;
  seed : int;
  max_conflicts : int;
  verbose : bool;
  checkpoint_dir : string option;
  checkpoint_every : int;
  resume : bool;
  verify_timeout : float option;
  isolate : Engine.isolate option;
  curriculum : Suite.sample list;
  curriculum_share : float;
}

let default_options =
  {
    grpo_steps = 150;
    group_size = 6;
    learning_rate = 0.6;
    sft_epochs = 4;
    seed = 1;
    max_conflicts = 40_000;
    verbose = false;
    checkpoint_dir = None;
    checkpoint_every = 25;
    resume = false;
    verify_timeout = None;
    isolate = None;
    curriculum = [];
    curriculum_share = 0.25;
  }

(* An explicit engine wins; otherwise a requested isolation backend gets a
   dedicated engine (with its worker pool forked here, before the Par
   domains see traffic); otherwise the stage uses the shared default. *)
let resolve_engine ~(opts : options) engine =
  match (engine, opts.isolate) with
  | (Some _ as e), _ -> e
  | None, Some i -> Some (Engine.create ~isolate:i ())
  | None, None -> None

type stage_log = { raw_rewards : float list; ema_rewards : float list }

let log_of rewards = { raw_rewards = rewards; ema_rewards = Grpo.ema rewards }

let sample_at (samples : Suite.sample array) rng = samples.(Random.State.int rng (Array.length samples))

(* Curriculum oversampling: when the adversarial curriculum is non-empty,
   each step first flips a biased coin for "draw from the mined corpus
   instead of the training set".  The coin is only tossed when a curriculum
   exists, so the default options replay the exact RNG trajectory of older
   runs (checkpoint/resume bit-identity is pinned by tests). *)
let pick_sample ~(opts : options) ~(curriculum : Suite.sample array)
    (samples : Suite.sample array) rng =
  if Array.length curriculum = 0 then sample_at samples rng
  else if Random.State.float rng 1.0 < opts.curriculum_share then sample_at curriculum rng
  else sample_at samples rng

(* ------------------------------------------------------------------ *)
(* The shared GRPO stage loop: checkpoint/resume and the kill-simulation
   fault site live here so all three stages inherit them identically.

   The whole mutable footprint of one stage — model, RNG, last completed
   step, running metrics, stage 1's failure harvest — travels together as
   [Checkpoint.snapshot]; the per-step reward logic is a callback.  Resume
   restores the snapshot and continues the loop from [step + 1] with the
   identical RNG state, so the trajectory matches an uninterrupted run bit
   for bit. *)

type stage_state = {
  st_model : Model.t;
  st_rng : Random.State.t;
  mutable st_rewards_rev : float list;
  mutable st_failures_rev : Sft.failure_record list;
}

let run_stage ~(opts : options) ~(stage : string) ~(fresh : unit -> Model.t) ~(rng_salt : int)
    ~(step_fn : stage_state -> unit) : stage_state =
  let fresh_state () =
    ( {
        st_model = fresh ();
        st_rng = Random.State.make [| opts.seed; rng_salt |];
        st_rewards_rev = [];
        st_failures_rev = [];
      },
      0 )
  in
  let state, last_done =
    match opts.checkpoint_dir with
    | Some dir when opts.resume -> (
      match Checkpoint.load ~dir ~stage with
      | Ok snap ->
        if opts.verbose then Fmt.epr "[%s] resuming after step %d@." stage snap.Checkpoint.step;
        ( {
            st_model = snap.Checkpoint.model;
            st_rng = snap.Checkpoint.rng;
            st_rewards_rev = snap.Checkpoint.rewards_rev;
            st_failures_rev = snap.Checkpoint.failures_rev;
          },
          snap.Checkpoint.step )
      | Error reason ->
        if opts.verbose then Fmt.epr "[%s] starting fresh: %s@." stage reason;
        fresh_state ())
    | _ -> fresh_state ()
  in
  let save step =
    match opts.checkpoint_dir with
    | Some dir ->
      Checkpoint.save ~dir
        {
          Checkpoint.stage;
          step;
          model = state.st_model;
          rng = state.st_rng;
          rewards_rev = state.st_rewards_rev;
          failures_rev = state.st_failures_rev;
        }
    | None -> ()
  in
  for step = last_done + 1 to opts.grpo_steps do
    (* fault site: a simulated kill between steps; the checkpoints already
       on disk must carry a resumed run to the identical final state *)
    (match Fault.abort_after () with
    | Some last when step > last ->
      Fault.inject Fault.Trainer_abort ~site:(Fmt.str "%s.step%d" stage step)
    | _ -> ());
    step_fn state;
    if opts.checkpoint_every > 0 && step mod opts.checkpoint_every = 0 then save step;
    if opts.verbose && step mod 25 = 0 then
      Fmt.epr "[%s] step %d mean reward %.3f@." stage step
        (match state.st_rewards_rev with r :: _ -> r | [] -> nan)
  done;
  save opts.grpo_steps;
  state

(* ------------------------------------------------------------------ *)
(* Stage 1: Model-Zero *)

type stage1_result = {
  model_zero : Model.t;
  failures : Sft.failure_record list;
  zero_log : stage_log;
}

let train_model_zero ?(opts = default_options) ?engine (base : Model.t)
    (train : Suite.sample list) : stage1_result =
  let engine = resolve_engine ~opts engine in
  let samples = Array.of_list train in
  let curriculum = Array.of_list opts.curriculum in
  let rcfg = { Reward.default_config with Reward.timeout = opts.verify_timeout } in
  let cfg =
    {
      Grpo.group_size = opts.group_size;
      learning_rate = opts.learning_rate;
      clip_norm = 5.0;
      temperature = 1.0;
    }
  in
  let step_fn (st : stage_state) =
    let model = st.st_model and rng = st.st_rng in
    let s = pick_sample ~opts ~curriculum samples rng in
    let group =
      List.init opts.group_size (fun _ ->
          Model.generate model ~mode:Prompt.Generic ~rng:(Some rng) ~sample_id:s.Suite.id
            s.Suite.modul s.Suite.src)
    in
    let verified =
      Par.run
        (fun (g : Model.generation) ->
          Reward.correctness_of_completion ~cfg:rcfg ?engine s.Suite.modul ~src:s.Suite.src
            ~label:s.Suite.label g.Model.completion)
        group
    in
    (* harvest failures as correction-augmented raw material (sequentially,
       so the record order matches the sequential implementation) *)
    List.iter2
      (fun (g : Model.generation) ((_, vc) : float * Reward.verified_candidate) ->
        match vc.Reward.verdict.Alive.category with
        | Alive.Semantic_error | Alive.Syntax_error when not g.Model.copied ->
          st.st_failures_rev <-
            {
              Sft.f_sample = s;
              bad_actions = g.Model.final_attempt.Model.actions_taken;
              f_evidence = g.Model.evidence;
              true_class =
                Diag.class_of_verdict_message
                  (match vc.Reward.verdict.Alive.category with
                  | Alive.Semantic_error -> `Semantic
                  | Alive.Syntax_error -> `Syntax
                  | Alive.Equivalent -> `Equivalent
                  | Alive.Inconclusive -> `Inconclusive)
                  vc.Reward.verdict.Alive.message;
              alive_message = vc.Reward.verdict.Alive.message;
            }
            :: st.st_failures_rev
        | _ -> ())
      group verified;
    let scored =
      List.map2
        (fun (g : Model.generation) (r, _) -> ({ Grpo.steps = g.Model.steps; reward = r }, r))
        group verified
    in
    let rs = Array.of_list (List.map snd scored) in
    let advs = Grpo.advantages rs in
    Grpo.update cfg model (List.mapi (fun i (r, _) -> (r, advs.(i))) scored);
    let mean = Array.fold_left ( +. ) 0. rs /. float_of_int (Array.length rs) in
    st.st_rewards_rev <- mean :: st.st_rewards_rev
  in
  let st =
    run_stage ~opts ~stage:"model-zero" ~rng_salt:11
      ~fresh:(fun () ->
        Model.clone ~name:"Model-Zero" ~noise_scale:(0.72 *. base.Model.noise_scale) base)
      ~step_fn
  in
  {
    model_zero = st.st_model;
    failures = List.rev st.st_failures_rev;
    zero_log = log_of (List.rev st.st_rewards_rev);
  }

(* ------------------------------------------------------------------ *)
(* Stage 2a: Warm-up (SFT) *)

let warm_up ?(opts = default_options) (base : Model.t) (train : Suite.sample list)
    (failures : Sft.failure_record list) : Model.t =
  let model = Model.clone ~name:"Warm-up" ~noise_scale:(0.72 *. base.Model.noise_scale) base in
  let first_time = List.map (Sft.first_time_datum ~augmented:true) train in
  let corrections = List.map Sft.correction_datum failures in
  let cfg = { Sft.default_config with Sft.epochs = opts.sft_epochs } in
  Sft.train cfg model (first_time @ corrections);
  model

(** SFT-only baselines (the paper's Fig. 5 comparators) train on generic
    prompts without the think/diagnose structure. *)
let sft_baseline ?(opts = default_options) (base : Model.t) (train : Suite.sample list) : Model.t
    =
  let model = Model.clone ~name:(base.Model.name ^ "-SFT") ~noise_scale:(0.72 *. base.Model.noise_scale) base in
  let data = List.map (Sft.first_time_datum ~augmented:false) train in
  let cfg = { Sft.default_config with Sft.epochs = opts.sft_epochs } in
  Sft.train cfg model data;
  model

(* ------------------------------------------------------------------ *)
(* Stage 2b: Model-Correctness *)

type stage2_result = { model_correctness : Model.t; correctness_log : stage_log }

let train_correctness ?(opts = default_options) ?engine (warm : Model.t)
    (train : Suite.sample list) : stage2_result =
  let engine = resolve_engine ~opts engine in
  let samples = Array.of_list train in
  let curriculum = Array.of_list opts.curriculum in
  let rcfg = { Reward.default_config with Reward.timeout = opts.verify_timeout } in
  let cfg =
    {
      Grpo.group_size = opts.group_size;
      learning_rate = opts.learning_rate;
      clip_norm = 5.0;
      temperature = 1.0;
    }
  in
  let step_fn (st : stage_state) =
    let model = st.st_model and rng = st.st_rng in
    let s = pick_sample ~opts ~curriculum samples rng in
    let group =
      List.init opts.group_size (fun _ ->
          Model.generate model ~mode:Prompt.Augmented ~rng:(Some rng) ~sample_id:s.Suite.id
            s.Suite.modul s.Suite.src)
    in
    (* render think-attempt texts sequentially (touches the model), then
       fan the two verifier calls per completion out on the pool *)
    let prepped =
      List.map
        (fun (g : Model.generation) ->
          let cot =
            match g.Model.claimed with
            | None -> None
            | Some claimed ->
              Some (claimed, Model.attempt_text model ~sample_id:s.Suite.id g.Model.first_attempt)
          in
          (g, cot))
        group
    in
    let scored =
      Par.run
        (fun ((g : Model.generation), cot) ->
          let answer_r, _ =
            Reward.correctness_of_completion ~cfg:rcfg ?engine s.Suite.modul ~src:s.Suite.src
              ~label:s.Suite.label g.Model.completion
          in
          let cot_r =
            match cot with
            | None -> 0.
            | Some (claimed, think_attempt) ->
              Reward.cot_agreement ~cfg:rcfg ?engine s.Suite.modul ~src:s.Suite.src ~claimed
                ~think_attempt ~model_message:(Diag.message_of_class claimed)
          in
          let r = answer_r +. cot_r in
          ({ Grpo.steps = g.Model.steps; reward = r }, r))
        prepped
    in
    let rs = Array.of_list (List.map snd scored) in
    let advs = Grpo.advantages rs in
    Grpo.update cfg model (List.mapi (fun i (r, _) -> (r, advs.(i))) scored);
    let mean = Array.fold_left ( +. ) 0. rs /. float_of_int (Array.length rs) in
    st.st_rewards_rev <- mean :: st.st_rewards_rev
  in
  let st =
    run_stage ~opts ~stage:"model-correctness" ~rng_salt:22
      ~fresh:(fun () ->
        (* diagnostic-feedback GRPO teaches the model to avoid its own
           failure modes, lowering the irreducible hallucination floor --
           SFT alone cannot do this, which is why the paper's SFT baselines
           trail on correctness *)
        Model.clone ~name:"Model-Correctness" ~halluc_rate:(0.5 *. warm.Model.halluc_rate) warm)
      ~step_fn
  in
  { model_correctness = st.st_model; correctness_log = log_of (List.rev st.st_rewards_rev) }

(* ------------------------------------------------------------------ *)
(* Stage 3: Model-Latency *)

type stage3_result = { model_latency : Model.t; latency_log : stage_log }

let train_latency ?(opts = default_options) ?engine (correctness : Model.t)
    (train : Suite.sample list) : stage3_result =
  let engine = resolve_engine ~opts engine in
  let samples = Array.of_list train in
  let curriculum = Array.of_list opts.curriculum in
  let rcfg =
    {
      Reward.default_config with
      Reward.max_conflicts = opts.max_conflicts;
      Reward.timeout = opts.verify_timeout;
    }
  in
  let u_max = Reward.u_max_of_samples train in
  let cfg =
    {
      Grpo.group_size = opts.group_size;
      learning_rate = opts.learning_rate;
      clip_norm = 5.0;
      temperature = 1.0;
    }
  in
  let step_fn (st : stage_state) =
    let model = st.st_model and rng = st.st_rng in
    let s = pick_sample ~opts ~curriculum samples rng in
    let baseline = Latency.of_func s.Suite.src in
    let group =
      List.init opts.group_size (fun _ ->
          Model.generate model ~mode:Prompt.Generic ~rng:(Some rng) ~sample_id:s.Suite.id
            s.Suite.modul s.Suite.src)
    in
    let scored =
      Par.run
        (fun (g : Model.generation) ->
          let vc =
            Reward.verify_completion ~cfg:rcfg ?engine s.Suite.modul ~src:s.Suite.src
              g.Model.completion
          in
          let equivalent = vc.Reward.verdict.Alive.category = Alive.Equivalent in
          let cand_latency =
            match vc.Reward.parsed with Some f -> Latency.of_func f | None -> baseline
          in
          (* labels are gone: format keeps shaping, Alive keeps correctness,
             speedup does the rest (Eq. 4) *)
          let r =
            (if Prompt.format_ok g.Model.completion then 0.2 else 0.)
            +. (if equivalent then 1.0 else 0.)
            +. Reward.latency ~u_max ~equivalent ~baseline ~candidate:cand_latency ()
          in
          ({ Grpo.steps = g.Model.steps; reward = r }, r))
        group
    in
    let rs = Array.of_list (List.map snd scored) in
    let advs = Grpo.advantages rs in
    Grpo.update cfg model (List.mapi (fun i (r, _) -> (r, advs.(i))) scored);
    let mean = Array.fold_left ( +. ) 0. rs /. float_of_int (Array.length rs) in
    st.st_rewards_rev <- mean :: st.st_rewards_rev
  in
  let st =
    run_stage ~opts ~stage:"model-latency" ~rng_salt:33
      ~fresh:(fun () ->
        Model.clone ~name:"Model-Latency" ~halluc_rate:(0.5 *. correctness.Model.halluc_rate)
          correctness)
      ~step_fn
  in
  { model_latency = st.st_model; latency_log = log_of (List.rev st.st_rewards_rev) }

(* ------------------------------------------------------------------ *)

type pipeline_result = {
  base : Model.t;
  stage1 : stage1_result;
  warm : Model.t;
  stage2 : stage2_result;
  stage3 : stage3_result;
}

(** Run the full four-model pipeline from a base model. *)
let full_pipeline ?(opts = default_options) ?engine (base : Model.t) (train : Suite.sample list)
    : pipeline_result =
  (* resolve once so all three stages share one engine (and worker pool) *)
  let engine = resolve_engine ~opts engine in
  let stage1 = train_model_zero ~opts ?engine base train in
  let warm = warm_up ~opts base train stage1.failures in
  let stage2 = train_correctness ~opts ?engine warm train in
  let stage3 = train_latency ~opts ?engine stage2.model_correctness train in
  { base; stage1; warm; stage2; stage3 }

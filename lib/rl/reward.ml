(** The paper's reward functions.

    Eq. 1 (hierarchical correctness):
      r = t * (1 + a * (1 + m)) + b
    with t = format compliance, a = Alive2 equivalence, m = exact match with
    the reference IR, b = BLEU similarity to the reference.

    Eq. 2 (chain-of-thought agreement): full reward when model and verifier
    agree the attempt is OK; 0.5 + 0.5*BLEU(F_model, F_alive) when both say
    ERR; zero on disagreement.

    Eq. 4 (latency): a convex, saturating function of the speedup over the
    -O0 baseline, gated on verified equivalence. *)

open Veriopt_ir
module Alive = Veriopt_alive.Alive
module Engine = Veriopt_alive.Engine
module Bleu = Veriopt_nlp.Bleu
module Model = Veriopt_llm.Model
module Prompt = Veriopt_llm.Prompt
module Diag = Veriopt_llm.Diag

type verified_candidate = {
  verdict : Alive.verdict;
  parsed : Ast.func option; (* the candidate function when it parses *)
  answer_text : string option;
}

type config = { unroll : int; max_conflicts : int; timeout : float option }

let default_config = { unroll = 4; max_conflicts = 60_000; timeout = None }

(* A per-call timeout becomes an absolute deadline at the moment the
   verification starts, not when the config was built. *)
let deadline_of cfg = Option.map (fun s -> Unix.gettimeofday () +. s) cfg.timeout

(* ------------------------------------------------------------------ *)
(* Crash-proof verification: a hostile completion (or an injected fault)
   that makes the engine raise must cost one candidate its reward, not the
   training run its life.  The exception is converted into a counted
   engine-failure verdict, scored exactly like [Inconclusive]. *)

let engine_failure_count = Atomic.make 0

let engine_failures () = Atomic.get engine_failure_count
let reset_engine_failures () = Atomic.set engine_failure_count 0

let engine_failure_verdict (exn : exn) : Alive.verdict =
  Atomic.incr engine_failure_count;
  {
    Alive.category = Alive.Inconclusive;
    message =
      Veriopt_alive.Diagnostics.inconclusive_message
        ("verification engine failure: " ^ Printexc.to_string exn);
    example = [];
    bounded = false;
    copy_of_input = false;
  }

(** A [Syntax_error] verdict record, the shape every reward path needs when
    the completion never reaches the verifier. *)
let syntax_verdict (detail : string) : Alive.verdict =
  {
    Alive.category = Alive.Syntax_error;
    message = Veriopt_alive.Diagnostics.syntax_error_message detail;
    example = [];
    bounded = false;
    copy_of_input = false;
  }

(** Run the verifier over a model completion, through the tiered + cached
    engine (shared process-wide unless [engine] is given). *)
let verify_completion ?(cfg = default_config) ?engine (modul : Ast.modul) ~(src : Ast.func)
    (completion : string) : verified_candidate =
  let engine = match engine with Some e -> e | None -> Engine.shared () in
  match Prompt.answer_of completion with
  | None ->
    { verdict = syntax_verdict "missing <answer> tags"; parsed = None; answer_text = None }
  | Some answer ->
    let verdict =
      match
        Engine.verify_text ~unroll:cfg.unroll ~max_conflicts:cfg.max_conflicts
          ?deadline:(deadline_of cfg) engine modul ~src ~tgt_text:answer
      with
      | v -> v
      | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
      | exception e -> engine_failure_verdict e
    in
    let parsed =
      match Parser.parse_func_result answer with Ok f -> Some f | Error _ -> None
    in
    { verdict; parsed; answer_text = Some answer }

(** Eq. 1. *)
let correctness ~(format_ok : bool) ~(equivalent : bool) ~(exact_match : bool) ~(bleu : float) :
    float =
  let t = if format_ok then 1. else 0. in
  let a = if equivalent then 1. else 0. in
  let m = if exact_match then 1. else 0. in
  (t *. (1. +. (a *. (1. +. m)))) +. bleu

(** Eq. 1 evaluated against a reference label. *)
let correctness_of_completion ?cfg ?engine (modul : Ast.modul) ~(src : Ast.func)
    ~(label : Ast.func) (completion : string) : float * verified_candidate =
  let vc = verify_completion ?cfg ?engine modul ~src completion in
  let format_ok = Prompt.format_ok completion in
  let equivalent = vc.verdict.Alive.category = Alive.Equivalent in
  let label_text = Printer.func_to_string label in
  let exact_match =
    equivalent
    && match vc.parsed with Some f -> Builder.alpha_equal f label | None -> false
  in
  let bleu =
    match vc.answer_text with
    | Some a -> Bleu.score a label_text
    | None -> Bleu.score completion label_text
  in
  (correctness ~format_ok ~equivalent ~exact_match ~bleu, vc)

(** Eq. 2: the CoT agreement reward for an augmented-mode completion.  The
    model's first attempt lives in the <think> block; we verify it and score
    the model's claim against the verifier's verdict. *)
let cot_agreement ?(cfg = default_config) ?engine (modul : Ast.modul) ~(src : Ast.func)
    ~(claimed : Diag.error_class) ~(think_attempt : string) ~(model_message : string) : float =
  let engine = match engine with Some e -> e | None -> Engine.shared () in
  let verdict =
    match
      Engine.verify_text ~unroll:cfg.unroll ~max_conflicts:cfg.max_conflicts
        ?deadline:(deadline_of cfg) engine modul ~src ~tgt_text:think_attempt
    with
    | v -> v
    | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
    | exception e -> engine_failure_verdict e
  in
  let truth_ok = verdict.Alive.category = Alive.Equivalent in
  let model_ok = claimed = Diag.C_ok in
  if truth_ok && model_ok then 1.0
  else if (not truth_ok) && not model_ok then
    0.5 +. (0.5 *. Bleu.score model_message verdict.Alive.message)
  else 0.0

(** Eq. 3–4: latency reward.  [u_max] is the saturation threshold (the 80th
    percentile of instcombine's speedups on the training set); [gamma] > 1
    emphasizes larger speedups. *)
let latency ?(gamma = 2.0) ~(u_max : float) ~(equivalent : bool) ~(baseline : int)
    ~(candidate : int) () : float =
  if not equivalent then 0.
  else
    let u = float_of_int baseline /. float_of_int (max 1 candidate) in
    if u <= 1. then 0. else Float.pow (Float.min 1. ((u -. 1.) /. (u_max -. 1.))) gamma

(** 80th percentile of instcombine speedups over a training set: the paper's
    choice of [U_max]. *)
let u_max_of_samples (samples : Veriopt_data.Suite.sample list) : float =
  let speedups =
    List.map
      (fun (s : Veriopt_data.Suite.sample) ->
        float_of_int (Veriopt_cost.Latency.of_func s.Veriopt_data.Suite.src)
        /. float_of_int (max 1 (Veriopt_cost.Latency.of_func s.Veriopt_data.Suite.label)))
      samples
    |> List.sort compare
  in
  match speedups with
  | [] -> 2.0
  | _ ->
    let n = List.length speedups in
    let idx = min (n - 1) (int_of_float (0.8 *. float_of_int n)) in
    Float.max 1.05 (List.nth speedups idx)

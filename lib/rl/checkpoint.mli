(** Versioned, atomically-written training snapshots (checkpoint/resume).

    One file per stage ([<dir>/<stage>.ckpt]), overwritten in place via
    tmp + rename: a crash mid-write leaves the previous snapshot intact.
    Because [Marshal] round-trips the RNG state and the parameter table
    exactly, resuming from a snapshot written after step [N] reproduces the
    uninterrupted run's remaining steps bit for bit. *)

type snapshot = {
  stage : string;  (** which stage loop wrote this (e.g. "model-zero") *)
  step : int;  (** last completed GRPO step *)
  model : Veriopt_llm.Model.t;
  rng : Random.State.t;
  rewards_rev : float list;  (** per-step mean rewards, most recent first *)
  failures_rev : Sft.failure_record list;
      (** stage-1 harvest, most recent first; [[]] for other stages *)
}

val path : dir:string -> stage:string -> string
(** [<dir>/<stage>.ckpt]. *)

val save : dir:string -> snapshot -> unit
(** Atomic write; creates [dir] if missing. *)

val load : dir:string -> stage:string -> (snapshot, string) result
(** Validates the magic header, the format version and the stage name;
    the error string says which check failed. *)

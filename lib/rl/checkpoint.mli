(** Versioned, atomically-written training snapshots (checkpoint/resume).

    One file per stage ([<dir>/<stage>.ckpt]), overwritten in place via
    tmp + rename: a crash mid-write leaves the previous snapshot intact.
    Each write also rotates the outgoing snapshot to [<file>.prev], and the
    payload carries its length plus a CRC-32 — so a truncated or bit-rotted
    latest snapshot is detected on load and the run falls back to the
    previous good one (with a warning on stderr) rather than resuming from
    garbage.  Because [Marshal] round-trips the RNG state and the parameter
    table exactly, resuming from a snapshot written after step [N]
    reproduces the uninterrupted run's remaining steps bit for bit. *)

type snapshot = {
  stage : string;  (** which stage loop wrote this (e.g. "model-zero") *)
  step : int;  (** last completed GRPO step *)
  model : Veriopt_llm.Model.t;
  rng : Random.State.t;
  rewards_rev : float list;  (** per-step mean rewards, most recent first *)
  failures_rev : Sft.failure_record list;
      (** stage-1 harvest, most recent first; [[]] for other stages *)
}

val path : dir:string -> stage:string -> string
(** [<dir>/<stage>.ckpt]. *)

val save : dir:string -> snapshot -> unit
(** Atomic write; creates [dir] if missing; rotates any existing snapshot
    to [.prev] first. *)

val load : dir:string -> stage:string -> (snapshot, string) result
(** Validates the magic header, the format version, the payload length and
    CRC-32, and the stage name; the error string says which check failed.
    A corrupt or truncated snapshot falls back to the [.prev] rotation
    (warning on stderr) before giving up. *)

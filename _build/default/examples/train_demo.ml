(* A miniature run of the paper's four-model training pipeline (Fig. 3),
   with the Fig. 4-style reward curves printed per stage.

     dune exec examples/train_demo.exe

   Takes about a minute: a small dataset, short GRPO schedules. *)

module S = Veriopt_data.Suite
module Trainer = Veriopt_rl.Trainer
module E = Veriopt.Evaluate
module Prompt = Veriopt_llm.Prompt

let spark values =
  (* a terminal sparkline for reward curves *)
  let glyphs = [| " "; "_"; "."; "-"; "="; "*"; "#" |] in
  let lo = List.fold_left min infinity values and hi = List.fold_left max neg_infinity values in
  String.concat ""
    (List.map
       (fun v ->
         let t = if hi > lo then (v -. lo) /. (hi -. lo) else 0.5 in
         glyphs.(min 6 (int_of_float (t *. 6.9))))
       values)

let () =
  Fmt.pr "building dataset (train/validation disjoint by construction)...@.";
  let train = (S.training ~n:80 ()).S.samples in
  let validation = (S.validation ~n:60 ()).S.samples in
  let opts = { Trainer.default_options with Trainer.grpo_steps = 100; sft_epochs = 4 } in
  let base = Veriopt_llm.Capability.base_3b () in

  Fmt.pr "stage 1: Model-Zero — GRPO from the base model, generic prompts@.";
  let s1 = Trainer.train_model_zero ~opts base train in
  Fmt.pr "  reward  %s@." (spark s1.Trainer.zero_log.Trainer.ema_rewards);
  Fmt.pr "  harvested %d diagnostic-augmented failure samples@." (List.length s1.Trainer.failures);

  Fmt.pr "stage 2a: Warm-up — SFT on first-time + correction samples@.";
  let warm = Trainer.warm_up ~opts base train s1.Trainer.failures in

  Fmt.pr "stage 2b: Model-Correctness — GRPO with augmented prompts (Eq.1 + Eq.2)@.";
  let s2 = Trainer.train_correctness ~opts warm train in
  Fmt.pr "  reward  %s@." (spark s2.Trainer.correctness_log.Trainer.ema_rewards);

  Fmt.pr "stage 3: Model-Latency — incremental GRPO with the latency reward (Eq.4)@.";
  let s3 = Trainer.train_latency ~opts s2.Trainer.model_correctness train in
  Fmt.pr "  reward  %s@." (spark s3.Trainer.latency_log.Trainer.ema_rewards);

  Fmt.pr "@.evaluating on held-out functions (greedy decoding + Alive verdicts)...@.";
  let show name ?mode model =
    let r = E.run ?mode ~max_conflicts:50_000 model validation in
    let c = r.E.counts in
    Fmt.pr "  %-18s correct %3d/%d (%d copies)  different-correct %.0f%%@." name c.E.correct
      c.E.total c.E.copies
      (100. *. E.different_correct_rate r)
  in
  show "base Qwen-3B" base;
  show "Model-Zero" s1.Trainer.model_zero;
  show "Warm-up" ~mode:Prompt.Augmented warm;
  show "Model-Correctness" ~mode:Prompt.Augmented s2.Trainer.model_correctness;
  show "Model-Latency" s3.Trainer.model_latency

examples/emergent_opts.mli:

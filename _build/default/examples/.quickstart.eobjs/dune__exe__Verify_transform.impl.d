examples/verify_transform.ml: Fmt List Veriopt_alive Veriopt_ir

examples/quickstart.mli:

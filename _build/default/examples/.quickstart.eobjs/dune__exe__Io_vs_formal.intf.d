examples/io_vs_formal.mli:

examples/io_vs_formal.ml: Fmt Veriopt_alive Veriopt_eval Veriopt_ir

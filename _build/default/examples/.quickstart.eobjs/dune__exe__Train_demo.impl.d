examples/train_demo.ml: Array Fmt List String Veriopt Veriopt_data Veriopt_llm Veriopt_rl

examples/emergent_opts.ml: Fmt List Veriopt Veriopt_data Veriopt_ir Veriopt_llm Veriopt_rl

examples/verify_transform.mli:

examples/quickstart.ml: Fmt List Veriopt_alive Veriopt_cost Veriopt_ir Veriopt_passes

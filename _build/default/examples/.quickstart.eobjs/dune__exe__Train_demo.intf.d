examples/train_demo.mli:

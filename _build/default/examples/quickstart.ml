(* Quickstart: the 2-minute tour of the public API.

     dune exec examples/quickstart.exe

   1. parse LLVM-IR text;
   2. run the handwritten instcombine pass;
   3. formally verify the transformation with the Alive-style validator;
   4. read the cost models. *)

module Parser = Veriopt_ir.Parser
module Printer = Veriopt_ir.Printer
module Alive = Veriopt_alive.Alive
module PM = Veriopt_passes.Pass_manager

let source =
  {|define i32 @compute(i32 %x, i32 %y) {
entry:
  %a = mul i32 %x, 8
  %b = add i32 %a, 0
  %c = udiv i32 %b, 4
  %d = sub i32 %c, %c
  %r = or i32 %c, %d
  ret i32 %r
}|}

let () =
  (* 1. parse *)
  let m = Veriopt_ir.Ast.empty_module in
  let f = Parser.parse_func source in
  Fmt.pr "--- input (-O0 style):@.%s@." (Printer.func_to_string f);

  (* 2. optimize with the handwritten pass *)
  let optimized, trace = PM.instcombine m f in
  Fmt.pr "--- after instcombine (%d rewrites):@.%s@." (List.length trace)
    (Printer.func_to_string optimized);
  List.iter
    (fun (e : PM.trace_entry) -> Fmt.pr "    applied %s at %%%s@." e.PM.rule e.PM.site)
    trace;

  (* 3. formally verify the transformation *)
  let verdict = Alive.verify_funcs m ~src:f ~tgt:optimized in
  Fmt.pr "--- verifier says: %s@."
    (match verdict.Alive.category with
    | Alive.Equivalent -> "EQUIVALENT (formally verified)"
    | Alive.Semantic_error -> "SEMANTIC ERROR"
    | Alive.Syntax_error -> "SYNTAX ERROR"
    | Alive.Inconclusive -> "INCONCLUSIVE");

  (* 4. cost models *)
  Fmt.pr "--- cost: latency %d -> %d, icount %d -> %d, binsize %d -> %d bytes@."
    (Veriopt_cost.Latency.of_func f)
    (Veriopt_cost.Latency.of_func optimized)
    (Veriopt_cost.Icount.of_func f)
    (Veriopt_cost.Icount.of_func optimized)
    (Veriopt_cost.Binsize.of_func f)
    (Veriopt_cost.Binsize.of_func optimized);

  (* 5. and the punchline of the paper: a wrong "optimization" is caught *)
  let wrong = "define i32 @compute(i32 %x, i32 %y) {\nentry:\n  %r = shl i32 %x, 2\n  ret i32 %r\n}" in
  let v = Alive.verify_text m ~src:f ~tgt_text:wrong in
  Fmt.pr "--- a plausible but wrong rewrite is rejected:@.%s@." v.Alive.message

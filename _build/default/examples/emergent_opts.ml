(* Emergent optimizations: reproducing the paper's Figs. 8-10 observation
   that a latency-trained model discovers mem2reg- and simplifycfg-like
   behaviour that its instcombine-generated labels never contained.

     dune exec examples/emergent_opts.exe

   We train the pipeline, then hunt the validation set for verified outputs
   that beat the handwritten pass, and print them side by side. *)

module S = Veriopt_data.Suite
module Trainer = Veriopt_rl.Trainer
module E = Veriopt.Evaluate
module Printer = Veriopt_ir.Printer

let () =
  let train = (S.training ~n:100 ()).S.samples in
  let validation = (S.validation ~n:120 ()).S.samples in
  let opts = { Trainer.default_options with Trainer.grpo_steps = 140; sft_epochs = 5 } in
  Fmt.pr "training the four-model pipeline (about a minute)...@.";
  let r = Trainer.full_pipeline ~opts (Veriopt_llm.Capability.base_3b ()) train in
  let model = r.Trainer.stage3.Trainer.model_latency in
  let ev = E.run ~max_conflicts:60_000 model validation in

  let wins =
    List.filter
      (fun (row : E.row) ->
        row.E.category = E.Correct_different
        && row.E.m_out.E.latency < row.E.m_label.E.latency)
      ev.E.rows
  in
  let losses =
    List.filter
      (fun (row : E.row) ->
        row.E.category = E.Correct_different
        && row.E.m_out.E.latency > row.E.m_label.E.latency)
      ev.E.rows
  in
  Fmt.pr "verified outputs beating instcombine: %d / %d (instcombine better on %d)@.@."
    (List.length wins) (List.length ev.E.rows) (List.length losses);

  let show n (row : E.row) =
    Fmt.pr "=== emergent win #%d (latency %d vs instcombine's %d, -O0 was %d) ===@." n
      row.E.m_out.E.latency row.E.m_label.E.latency row.E.m_src.E.latency;
    Fmt.pr "--- -O0 input:@.%s@." (Printer.func_to_string row.E.sample.S.src);
    Fmt.pr "--- instcombine:@.%s@." (Printer.func_to_string row.E.sample.S.label);
    Fmt.pr "--- LLM-VeriOpt (verified):@.%s@." (Printer.func_to_string row.E.output)
  in
  List.iteri (fun i row -> if i < 2 then show (i + 1) row) wins;

  (* and a case the other way, like the paper's Figs. 11-12 *)
  (match losses with
  | row :: _ ->
    Fmt.pr "=== instcombine superiority (the model misses a pattern) ===@.";
    Fmt.pr "--- instcombine (latency %d):@.%s@." row.E.m_label.E.latency
      (Printer.func_to_string row.E.sample.S.label);
    Fmt.pr "--- LLM-VeriOpt (latency %d):@.%s@." row.E.m_out.E.latency
      (Printer.func_to_string row.E.output)
  | [] -> Fmt.pr "(no instcombine-superior case at this scale)@.");

  (* deployment stance: fall back so the user never loses *)
  let net =
    E.geomean_speedup ev.E.rows
      ~metric:(fun m -> m.E.latency)
      ~out:(fun r -> E.best_of_both r)
      ~base:E.label_metrics
  in
  Fmt.pr "with verified fallback to instcombine, net latency gain over it alone: %.1f%%@."
    (100. *. (net -. 1.))

(* Using the Alive-style translation validator as a standalone tool: the
   scenario of the paper's SII-D — formally checking candidate IR rewrites
   and reading the diagnostics that drive training.

     dune exec examples/verify_transform.exe *)

module Parser = Veriopt_ir.Parser
module Alive = Veriopt_alive.Alive

let m = Veriopt_ir.Ast.empty_module

let check title src tgt =
  let v = Alive.verify_text m ~src:(Parser.parse_func src) ~tgt_text:tgt in
  Fmt.pr "== %s ==@." title;
  Fmt.pr "%s@." v.Alive.message;
  if v.Alive.example <> [] then begin
    Fmt.pr "counterexample inputs:@.";
    List.iter (fun (name, value) -> Fmt.pr "  %s = %Ld@." name value) v.Alive.example
  end;
  Fmt.pr "@."

let () =
  (* A classic sound peephole: (x << 3) >> 3 masks the top bits. *)
  check "shift round-trip to mask (sound)"
    {|define i32 @f(i32 %x) {
entry:
  %a = shl i32 %x, 3
  %r = lshr i32 %a, 3
  ret i32 %r
}|}
    {|define i32 @f(i32 %x) {
entry:
  %r = and i32 %x, 536870911
  ret i32 %r
}|};

  (* The same idea with the wrong mask: the solver finds the witness. *)
  check "shift round-trip with an off-by-one mask (unsound)"
    {|define i32 @f(i32 %x) {
entry:
  %a = shl i32 %x, 3
  %r = lshr i32 %a, 3
  ret i32 %r
}|}
    {|define i32 @f(i32 %x) {
entry:
  %r = and i32 %x, 268435455
  ret i32 %r
}|};

  (* Undefined behaviour as a license to optimize: x/x is 1 because x = 0
     would already be UB in the source. *)
  check "x udiv x -> 1 (sound, UB-justified)"
    "define i8 @f(i8 %x) {\nentry:\n  %r = udiv i8 %x, %x\n  ret i8 %r\n}"
    "define i8 @f(i8 %x) {\nentry:\n  ret i8 1\n}";

  (* Poison discipline: adding an nsw flag the source never promised. *)
  check "strength reduction that invents nsw (unsound)"
    "define i8 @f(i8 %x) {\nentry:\n  %r = mul i8 %x, 4\n  ret i8 %r\n}"
    "define i8 @f(i8 %x) {\nentry:\n  %r = shl nsw i8 %x, 2\n  ret i8 %r\n}";

  (* Memory: promoting a spilled value through a conditional needs a phi;
     the validator checks the whole control-flow diamond. *)
  check "diamond store/load promotion (sound)"
    {|define i32 @f(i32 %x) {
entry:
  %p = alloca i32, align 4
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %pos, label %neg
pos:
  store i32 1, ptr %p, align 4
  br label %done
neg:
  store i32 -1, ptr %p, align 4
  br label %done
done:
  %v = load i32, ptr %p, align 4
  ret i32 %v
}|}
    {|define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  %v = select i1 %c, i32 1, i32 -1
  ret i32 %v
}|};

  (* The model's most common failure mode: output that is not even IR. *)
  check "hallucinated output (syntax error)"
    "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
    "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, %does_not_exist\n  ret i32 %r\n}"

(* Finite I/O testing vs formal verification — the motivation behind the
   whole paper (SI, via LLM-Vectorizer): testing a transformation on sample
   inputs overestimates correctness; translation validation does not.

     dune exec examples/io_vs_formal.exe *)

module Parser = Veriopt_ir.Parser
module Alive = Veriopt_alive.Alive
module Oracle = Veriopt_eval.Exec_oracle

let m = Veriopt_ir.Ast.empty_module

let show title src_text tgt_text =
  let src = Parser.parse_func src_text and tgt = Parser.parse_func tgt_text in
  let io =
    match Oracle.equivalent ~samples:32 m ~src ~tgt with
    | Oracle.Io_equivalent n -> Fmt.str "PASS (%d samples agree)" n
    | Oracle.Io_different _ -> "FAIL (distinguishing input found)"
    | Oracle.Io_unsupported r -> "unsupported: " ^ r
  in
  let formal =
    match (Alive.verify_funcs m ~src ~tgt).Alive.category with
    | Alive.Equivalent -> "EQUIVALENT"
    | Alive.Semantic_error -> "SEMANTIC ERROR"
    | Alive.Syntax_error -> "SYNTAX ERROR"
    | Alive.Inconclusive -> "INCONCLUSIVE"
  in
  Fmt.pr "== %s@.   I/O testing (32 vectors): %s@.   formal verification:      %s@.@."
    title io formal

let () =
  Fmt.pr "Three candidate \"optimizations\" of `ret i32 %%x`:@.@.";

  show "a correct rewrite"
    "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}"
    "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}";

  show "wrong on most inputs (testing catches it too)"
    "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
    "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}";

  show "wrong on exactly one input out of 2^32 (testing is fooled)"
    "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
    "define i32 @f(i32 %x) {\nentry:\n  %c = icmp eq i32 %x, 123456789\n  %r = select i1 %c, i32 0, i32 %x\n  ret i32 %r\n}";

  show "poison-only difference (no test vector can see it)"
    "define i8 @f(i8 %x) {\nentry:\n  %r = mul i8 %x, 4\n  ret i8 %r\n}"
    "define i8 @f(i8 %x) {\nentry:\n  %r = shl nsw i8 %x, 2\n  ret i8 %r\n}";

  Fmt.pr
    "The last two are why the paper puts a formal validator, not a test@.suite, inside the reward loop: an LLM trained against tests learns to@.pass tests; an LLM trained against Alive learns to be correct.@."

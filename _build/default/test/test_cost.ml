(* Cost models: latency, instruction count, binary size. *)

open Veriopt_ir
module L = Veriopt_cost.Latency
module IC = Veriopt_cost.Icount
module B = Veriopt_cost.Binsize

let parse = Parser.parse_func

let unit_tests =
  [
    Alcotest.test_case "latency of trivial return" `Quick (fun () ->
        let f = parse "define i32 @f() {\nentry:\n  ret i32 0\n}" in
        Alcotest.(check int) "just ret" 1 (L.of_func f));
    Alcotest.test_case "loads dominate ALU latency" `Quick (fun () ->
        let load_f =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}"
        in
        let alu_f = parse "define i32 @f(i32 %x) {\nentry:\n  %v = add i32 %x, 1\n  ret i32 %v\n}" in
        Alcotest.(check bool) "load heavier" true (L.of_func load_f > L.of_func alu_f));
    Alcotest.test_case "division is expensive" `Quick (fun () ->
        let d = parse "define i32 @f(i32 %x) {\nentry:\n  %v = sdiv i32 %x, 3\n  ret i32 %v\n}" in
        let a = parse "define i32 @f(i32 %x) {\nentry:\n  %v = add i32 %x, 3\n  ret i32 %v\n}" in
        Alcotest.(check bool) "div heavier" true (L.of_func d > L.of_func a + 5));
    Alcotest.test_case "icount counts terminators" `Quick (fun () ->
        let f = parse "define i32 @f(i32 %x) {\nentry:\n  %v = add i32 %x, 1\n  ret i32 %v\n}" in
        Alcotest.(check int) "two instrs" 2 (IC.of_func f));
    Alcotest.test_case "binary size is 4-byte granular" `Quick (fun () ->
        let f = parse "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}" in
        Alcotest.(check int) "multiple of 4" 0 (B.text_bytes_of_func f mod 4));
    Alcotest.test_case "big immediates cost extra moves" `Quick (fun () ->
        let small = parse "define i32 @f(i32 %x) {\nentry:\n  %v = add i32 %x, 7\n  ret i32 %v\n}" in
        let big =
          parse "define i32 @f(i32 %x) {\nentry:\n  %v = add i32 %x, 123456789\n  ret i32 %v\n}"
        in
        Alcotest.(check bool) "bigger" true (B.text_bytes_of_func big > B.text_bytes_of_func small));
    Alcotest.test_case ".data counts initialized globals only" `Quick (fun () ->
        let m1 = Parser.parse_module "@g = global i64 5" in
        let m0 = Parser.parse_module "@g = global i64 0" in
        Alcotest.(check int) "init data" 8 (B.data_bytes m1);
        Alcotest.(check int) "bss excluded" 0 (B.data_bytes m0));
  ]

(* Properties: removing an instruction never increases any metric. *)
let gen_seed = QCheck2.Gen.int_bound 50_000

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name:"all metrics are positive on lowered functions" gen_seed
         (fun seed ->
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let _, f = Veriopt_data.Lower.lower cf in
           L.of_func f > 0 && IC.of_func f > 0 && B.text_bytes_of_func f > 0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name:"dropping an instruction never raises a metric" gen_seed
         (fun seed ->
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let _, f = Veriopt_data.Lower.lower cf in
           (* drop the first instruction of the entry block (metrics ignore
              def-use validity) *)
           match f.Ast.blocks with
           | b :: rest when b.Ast.instrs <> [] ->
             let f' = { f with Ast.blocks = { b with Ast.instrs = List.tl b.Ast.instrs } :: rest } in
             L.of_func f' <= L.of_func f
             && IC.of_func f' < IC.of_func f
             && B.text_bytes_of_func f' <= B.text_bytes_of_func f
           | _ -> true));
  ]

let suite = ("cost", unit_tests @ property_tests)

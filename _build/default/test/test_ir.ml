(* Parser/printer round-trips, validator behaviour, CFG utilities. *)

open Veriopt_ir

let parse = Parser.parse_func
let print = Printer.func_to_string

let roundtrip_ok src =
  let f = parse src in
  let text = print f in
  let f2 = parse text in
  Alcotest.(check string) "roundtrip fixpoint" text (print f2)

let expect_syntax_error src =
  match Parser.parse_func_result src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

let expect_invalid src =
  let f = parse src in
  match Validator.validate_func f with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error _ -> ()

let valid_func src =
  let f = parse src in
  match Validator.validate_func f with
  | Ok () -> f
  | Error es -> Alcotest.failf "unexpected validation errors: %s" (String.concat "; " es)

let simple =
  "define i32 @f(i32 %x) {\nentry:\n  %r = add nsw i32 %x, 1\n  ret i32 %r\n}"

let branchy =
  {|define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  %n = sub i32 0, %x
  br label %join
b:
  br label %join
join:
  %r = phi i32 [ %n, %a ], [ %x, %b ]
  ret i32 %r
}|}

let parser_tests =
  [
    Alcotest.test_case "roundtrip simple" `Quick (fun () -> roundtrip_ok simple);
    Alcotest.test_case "roundtrip branchy" `Quick (fun () -> roundtrip_ok branchy);
    Alcotest.test_case "roundtrip all binops and flags" `Quick (fun () ->
        roundtrip_ok
          {|define i64 @f(i64 %x, i64 %y) {
entry:
  %a = add nuw nsw i64 %x, %y
  %b = sub nsw i64 %a, %y
  %c = mul nuw i64 %b, 3
  %d = udiv exact i64 %c, 2
  %e = sdiv i64 %d, -3
  %f = urem i64 %e, 7
  %g = srem i64 %f, 5
  %h = shl i64 %g, 2
  %i = lshr exact i64 %h, 1
  %j = ashr i64 %i, 1
  %k = and i64 %j, 255
  %l = or i64 %k, 16
  %m = xor i64 %l, -1
  ret i64 %m
}|});
    Alcotest.test_case "roundtrip casts, select, memory" `Quick (fun () ->
        roundtrip_ok
          {|define i8 @f(i64 %x) {
entry:
  %p = alloca i64, align 8
  store i64 %x, ptr %p, align 8
  %v = load i64, ptr %p, align 8
  %t = trunc i64 %v to i8
  %z = zext i8 %t to i32
  %s = sext i8 %t to i16
  %c = icmp eq i16 %s, 0
  %r = select i1 %c, i8 %t, i8 7
  ret i8 %r
}|});
    Alcotest.test_case "roundtrip switch and unreachable" `Quick (fun () ->
        roundtrip_ok
          {|define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [ i32 1, label %a i32 2, label %b ]
a:
  ret i32 10
b:
  ret i32 20
d:
  unreachable
}|});
    Alcotest.test_case "clang-style typed pointers accepted" `Quick (fun () ->
        let f =
          parse
            "define i64 @f(i64 %x) {\n\
            \  %1 = alloca i64, align 8\n\
            \  store i64 %x, i64* %1, align 8\n\
            \  %2 = load i64, i64* %1, align 8\n\
            \  ret i64 %2\n\
             }"
        in
        Alcotest.(check int) "blocks" 1 (List.length f.Ast.blocks));
    Alcotest.test_case "clang attributes skipped" `Quick (fun () ->
        let f =
          parse
            "define dso_local i32 @f(i32 noundef %x) #0 {\nentry:\n  ret i32 %x\n}"
        in
        Alcotest.(check string) "name" "f" f.Ast.fname);
    Alcotest.test_case "numeric labels" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %x) {\n  br label %7\n7:\n  ret i32 %x\n}"
        in
        Alcotest.(check int) "blocks" 2 (List.length f.Ast.blocks));
    Alcotest.test_case "named struct types" `Quick (fun () ->
        let m =
          Parser.parse_module
            "%struct.S = type { i32, i32 }\n\
             define i64 @f() {\n\
             entry:\n\
            \  %p = alloca i64, align 8\n\
            \  %q = getelementptr inbounds %struct.S, ptr %p, i64 0, i32 1\n\
            \  store i32 1, ptr %q, align 4\n\
            \  ret i64 0\n\
             }"
        in
        Alcotest.(check int) "funcs" 1 (List.length m.Ast.funcs));
    Alcotest.test_case "rejects garbage" `Quick (fun () ->
        expect_syntax_error "define i32 @f() { entry: ret i32 }}}");
    Alcotest.test_case "rejects missing operand" `Quick (fun () ->
        expect_syntax_error "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x,\n  ret i32 %r\n}");
    Alcotest.test_case "rejects bad opcode" `Quick (fun () ->
        expect_syntax_error "define i32 @f(i32 %x) {\nentry:\n  %r = frobnicate i32 %x\n  ret i32 %r\n}");
    Alcotest.test_case "rejects unterminated function" `Quick (fun () ->
        expect_syntax_error "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n");
    Alcotest.test_case "hex literals" `Quick (fun () ->
        let f = parse "define i32 @f() {\nentry:\n  ret i32 0xff\n}" in
        match (List.hd f.Ast.blocks).Ast.term with
        | Ast.Ret (Some (_, Ast.Const (Ast.CInt { value; _ }))) ->
          Alcotest.(check int64) "value" 255L value
        | _ -> Alcotest.fail "bad terminator");
  ]

let validator_tests =
  [
    Alcotest.test_case "accepts valid branchy function" `Quick (fun () ->
        ignore (valid_func branchy));
    Alcotest.test_case "rejects use of undefined value" `Quick (fun () ->
        expect_invalid "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, %nope\n  ret i32 %r\n}");
    Alcotest.test_case "rejects type mismatch" `Quick (fun () ->
        expect_invalid
          "define i32 @f(i64 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}");
    Alcotest.test_case "rejects duplicate definitions" `Quick (fun () ->
        expect_invalid
          "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  %r = add i32 %x, 2\n  ret i32 %r\n}");
    Alcotest.test_case "rejects ret type mismatch" `Quick (fun () ->
        expect_invalid "define i64 @f(i32 %x) {\nentry:\n  ret i32 %x\n}");
    Alcotest.test_case "rejects branch to unknown block" `Quick (fun () ->
        expect_invalid "define i32 @f(i32 %x) {\nentry:\n  br label %nowhere\n}");
    Alcotest.test_case "rejects use before def in same block" `Quick (fun () ->
        expect_invalid
          "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %b, 1\n  %b = add i32 %x, 1\n  ret i32 %a\n}");
    Alcotest.test_case "rejects def not dominating use" `Quick (fun () ->
        expect_invalid
          {|define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  %n = add i32 %x, 1
  br label %b
b:
  ret i32 %n
}|});
    Alcotest.test_case "rejects phi in entry" `Quick (fun () ->
        expect_invalid
          "define i32 @f(i32 %x) {\nentry:\n  %p = phi i32 [ %x, %entry ]\n  ret i32 %p\n}");
    Alcotest.test_case "rejects phi missing a predecessor" `Quick (fun () ->
        expect_invalid
          {|define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 %x, 0
  br i1 %c, label %a, label %j
a:
  br label %j
j:
  %p = phi i32 [ 1, %a ]
  ret i32 %p
}|});
    Alcotest.test_case "rejects invalid cast widths" `Quick (fun () ->
        expect_invalid
          "define i32 @f(i32 %x) {\nentry:\n  %t = zext i32 %x to i32\n  ret i32 %t\n}");
    Alcotest.test_case "rejects select condition type" `Quick (fun () ->
        expect_syntax_error
          "define i32 @f(i32 %x) {\nentry:\n  %r = select i32 %x, i32 1, i32 2\n  ret i32 %r\n}");
    Alcotest.test_case "rejects call to undeclared function" `Quick (fun () ->
        let f =
          parse "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @mystery(i32 %x)\n  ret i32 %r\n}"
        in
        match Validator.validate_func ~module_:Ast.empty_module f with
        | Ok () -> Alcotest.fail "expected failure"
        | Error _ -> ());
  ]

let cfg_tests =
  [
    Alcotest.test_case "successors and predecessors" `Quick (fun () ->
        let f = parse branchy in
        let cfg = Cfg.of_func f in
        Alcotest.(check (list string)) "succ entry" [ "a"; "b" ] (Cfg.successors cfg "entry");
        Alcotest.(check (list string))
          "preds join" [ "a"; "b" ]
          (List.sort compare (Cfg.predecessors cfg "join")));
    Alcotest.test_case "dominators" `Quick (fun () ->
        let f = parse branchy in
        let cfg = Cfg.of_func f in
        Alcotest.(check bool) "entry dom join" true (Cfg.dominates cfg "entry" "join");
        Alcotest.(check bool) "a not dom join" false (Cfg.dominates cfg "a" "join");
        Alcotest.(check bool) "self dom" true (Cfg.dominates cfg "a" "a"));
    Alcotest.test_case "loop detection" `Quick (fun () ->
        let f = parse branchy in
        Alcotest.(check bool) "acyclic" false (Cfg.has_loop (Cfg.of_func f));
        let loop =
          parse
            {|define i32 @g(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h2 ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %h2, label %x
h2:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}|}
        in
        Alcotest.(check bool) "cyclic" true (Cfg.has_loop (Cfg.of_func loop)));
    Alcotest.test_case "rpo starts at entry" `Quick (fun () ->
        let f = parse branchy in
        let cfg = Cfg.of_func f in
        match Cfg.blocks_rpo cfg with
        | b :: _ -> Alcotest.(check string) "entry first" "entry" b.Ast.label
        | [] -> Alcotest.fail "empty rpo");
  ]

let builder_tests =
  [
    Alcotest.test_case "renumber is idempotent" `Quick (fun () ->
        let f = parse branchy in
        let r1 = Builder.renumber f in
        Alcotest.(check string) "idempotent" (print r1) (print (Builder.renumber r1)));
    Alcotest.test_case "alpha_equal ignores names" `Quick (fun () ->
        let a = parse "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}" in
        let b = parse "define i32 @f(i32 %y) {\nstart:\n  %q = add i32 %y, 1\n  ret i32 %q\n}" in
        Alcotest.(check bool) "equal" true (Builder.alpha_equal a b));
    Alcotest.test_case "alpha_equal distinguishes structure" `Quick (fun () ->
        let a = parse "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}" in
        let b = parse "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 2\n  ret i32 %r\n}" in
        Alcotest.(check bool) "not equal" false (Builder.alpha_equal a b));
    Alcotest.test_case "substitute_operand rewrites uses" `Quick (fun () ->
        let f = parse simple in
        let f' = Builder.substitute_operand f ~from:"x" ~to_:(Ast.const_int 32 5L) in
        Alcotest.(check bool)
          "no %x use left" false
          (String.length (print f') > 0
          &&
          let text = print f' in
          let re = "add nsw i32 %x" in
          let n = String.length text and m = String.length re in
          let rec go i = i + m <= n && (String.sub text i m = re || go (i + 1)) in
          go 0));
    Alcotest.test_case "use_counts" `Quick (fun () ->
        let f = parse branchy in
        let uses = Builder.use_counts f in
        Alcotest.(check (option int)) "x used three times" (Some 3) (Hashtbl.find_opt uses "x"));
    Alcotest.test_case "fresh avoids collisions" `Quick (fun () ->
        let f = parse simple in
        let names = Builder.names_of_func f in
        let n1 = Builder.fresh names "t" in
        let n2 = Builder.fresh names "t" in
        Alcotest.(check bool) "distinct" true (n1 <> n2));
  ]

(* Property: lowering random mini-C functions yields valid IR whose printed
   form reparses to the same text. *)
let gen_seed = QCheck2.Gen.int_bound 100_000

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:120 ~name:"lowered IR is valid and round-trips" gen_seed
         (fun seed ->
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let m, f = Veriopt_data.Lower.lower cf in
           (match Validator.validate_func ~module_:m f with
           | Ok () -> ()
           | Error es -> QCheck2.Test.fail_reportf "invalid: %s" (String.concat "; " es));
           let text = print f in
           let f2 = parse text in
           print f2 = text));
  ]

let suite = ("ir", parser_tests @ validator_tests @ cfg_tests @ builder_tests @ property_tests)

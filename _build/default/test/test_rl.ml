(* Rewards (the paper's Eqs. 1, 2, 4), GRPO mechanics, and SFT. *)

open Veriopt_ir
module R = Veriopt_rl.Reward
module G = Veriopt_rl.Grpo
module Sft = Veriopt_rl.Sft
module M = Veriopt_llm.Model
module Cap = Veriopt_llm.Capability
module S = Veriopt_data.Suite
module Prompt = Veriopt_llm.Prompt
module Diag = Veriopt_llm.Diag

let m0 = Ast.empty_module
let parse = Parser.parse_func

let feq = Alcotest.(check (float 1e-9))

let reward_tests =
  [
    Alcotest.test_case "Eq.1 hierarchy" `Quick (fun () ->
        (* exact correct answer: t(1 + a(1 + m)) + b = 1*(1+1*2) + 1 = 4 *)
        feq "exact" 4.0
          (R.correctness ~format_ok:true ~equivalent:true ~exact_match:true ~bleu:1.0);
        (* correct but different: 1*(1+1) + b *)
        feq "different" 2.5
          (R.correctness ~format_ok:true ~equivalent:true ~exact_match:false ~bleu:0.5);
        (* wrong but well-formed: 1 + b *)
        feq "wrong" 1.3
          (R.correctness ~format_ok:true ~equivalent:false ~exact_match:false ~bleu:0.3);
        (* format failure: only BLEU *)
        feq "bad format" 0.2
          (R.correctness ~format_ok:false ~equivalent:false ~exact_match:false ~bleu:0.2));
    Alcotest.test_case "Eq.1 ordering is strict" `Quick (fun () ->
        let r ~e ~m ~b = R.correctness ~format_ok:true ~equivalent:e ~exact_match:m ~bleu:b in
        Alcotest.(check bool) "exact > correct > wrong" true
          (r ~e:true ~m:true ~b:1.0 > r ~e:true ~m:false ~b:0.9
          && r ~e:true ~m:false ~b:0.2 > r ~e:false ~m:false ~b:0.9));
    Alcotest.test_case "Eq.1 evaluated end to end" `Quick (fun () ->
        let src = parse "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}" in
        let label = parse "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}" in
        let completion = "<answer>\ndefine i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}\n</answer>" in
        let r, vc = R.correctness_of_completion m0 ~src ~label completion in
        Alcotest.(check bool) "equivalent" true
          (vc.R.verdict.Veriopt_alive.Alive.category = Veriopt_alive.Alive.Equivalent);
        feq "exact reward" 4.0 r);
    Alcotest.test_case "Eq.2 agreement cases" `Quick (fun () ->
        let src = parse "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}" in
        (* correct attempt claimed OK: full reward *)
        feq "both ok" 1.0
          (R.cot_agreement m0 ~src ~claimed:Diag.C_ok
             ~think_attempt:"define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
             ~model_message:"");
        (* wrong attempt claimed OK: zero *)
        feq "missed error" 0.0
          (R.cot_agreement m0 ~src ~claimed:Diag.C_ok
             ~think_attempt:"define i32 @f(i32 %x) {\nentry:\n  ret i32 0\n}"
             ~model_message:"");
        (* wrong attempt claimed ERR: at least 0.5 *)
        Alcotest.(check bool) "caught error >= 0.5" true
          (R.cot_agreement m0 ~src ~claimed:Diag.C_value_mismatch
             ~think_attempt:"define i32 @f(i32 %x) {\nentry:\n  ret i32 0\n}"
             ~model_message:(Diag.message_of_class Diag.C_value_mismatch)
          >= 0.5));
    Alcotest.test_case "Eq.4 latency reward shape" `Quick (fun () ->
        (* no speedup, or unverified: zero *)
        feq "u<=1" 0.0 (R.latency ~u_max:3.0 ~equivalent:true ~baseline:10 ~candidate:10 ());
        feq "not equivalent" 0.0 (R.latency ~u_max:3.0 ~equivalent:false ~baseline:30 ~candidate:10 ());
        (* saturates at u_max *)
        feq "saturated" 1.0 (R.latency ~u_max:3.0 ~equivalent:true ~baseline:100 ~candidate:10 ());
        (* convex in between: halfway speedup gives (0.5)^2 *)
        feq "convex" 0.25 (R.latency ~u_max:3.0 ~equivalent:true ~baseline:20 ~candidate:10 ()));
    Alcotest.test_case "U_max is the 80th percentile of label speedups" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:99 ~n:12 () in
        let u = R.u_max_of_samples ds.S.samples in
        Alcotest.(check bool) "sane range" true (u > 1.0 && u < 50.0));
  ]

let grpo_tests =
  [
    Alcotest.test_case "advantages are standardized" `Quick (fun () ->
        let a = G.advantages [| 1.0; 2.0; 3.0 |] in
        feq "mean zero" 0.0 (Array.fold_left ( +. ) 0. a /. 3.);
        Alcotest.(check bool) "ordering preserved" true (a.(0) < a.(1) && a.(1) < a.(2)));
    Alcotest.test_case "uniform rewards give zero advantage" `Quick (fun () ->
        let a = G.advantages [| 2.0; 2.0; 2.0; 2.0 |] in
        Array.iter (fun x -> feq "zero" 0.0 x) a);
    Alcotest.test_case "update moves probability toward rewarded actions" `Quick (fun () ->
        let model = M.create "test" in
        M.set model "good" 0.0;
        M.set model "bad" 0.0;
        let step chosen =
          { M.keys = [| [ "good" ]; [ "bad" ] |]; probs = [| 0.5; 0.5 |]; chosen }
        in
        let rollouts =
          [ ({ G.steps = [ step 0 ]; reward = 1.0 }, 1.0); ({ G.steps = [ step 1 ]; reward = 0.0 }, -1.0) ]
        in
        G.update G.default_config model rollouts;
        Alcotest.(check bool) "good above bad" true (M.get model "good" > M.get model "bad"));
    Alcotest.test_case "frozen keys do not move" `Quick (fun () ->
        let model = M.create "test" in
        M.set model "stuck" 0.0;
        M.freeze model "stuck";
        let step = { M.keys = [| [ "stuck" ]; [ "free" ] |]; probs = [| 0.5; 0.5 |]; chosen = 0 } in
        G.update G.default_config model [ ({ G.steps = [ step ]; reward = 1.0 }, 1.0) ];
        feq "frozen unchanged" 0.0 (M.get model "stuck"));
    Alcotest.test_case "EMA smoothing" `Quick (fun () ->
        let e = G.ema ~alpha:0.5 [ 0.0; 1.0; 1.0 ] in
        Alcotest.(check (list (float 1e-9))) "series" [ 0.0; 0.5; 0.75 ] e);
    Alcotest.test_case "gradient norm clipping bounds the step" `Quick (fun () ->
        let model = M.create "test" in
        let huge =
          { M.keys = [| [ "k" ]; [ "other" ] |]; probs = [| 0.0; 1.0 |]; chosen = 0 }
        in
        let cfg = { G.default_config with G.learning_rate = 1.0; clip_norm = 0.1 } in
        G.update cfg model [ ({ G.steps = [ huge ]; reward = 1.0 }, 100.0) ];
        Alcotest.(check bool) "bounded" true (abs_float (M.get model "k") <= 0.11));
  ]

let sft_tests =
  [
    Alcotest.test_case "teacher edits reproduce the instcombine label" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:31337 ~n:3 () in
        List.iter
          (fun (s : S.sample) ->
            let actions = Sft.teacher_edits s.S.modul s.S.src in
            (* replay them *)
            let out =
              List.fold_left
                (fun f a ->
                  match a with
                  | Veriopt_llm.Actions.Apply_rule (r, site) ->
                    Veriopt_llm.Actions.apply_rule s.S.modul f r site
                  | Veriopt_llm.Actions.Apply_pass p -> Veriopt_llm.Actions.apply_pass s.S.modul f p
                  | _ -> f)
                s.S.src actions
            in
            (* the teacher's replayed output must be alpha-equal to the
               instcombine label *)
            Alcotest.(check bool) "matches label" true (Builder.alpha_equal out s.S.label))
          ds.S.samples);
    Alcotest.test_case "SFT raises teacher-sequence likelihood" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:123 ~n:6 () in
        let model = Cap.base_3b () in
        let before = M.get model "act:rule" in
        let data = List.map (Sft.first_time_datum ~augmented:false) ds.S.samples in
        Sft.train { Sft.default_config with Sft.epochs = 3 } model data;
        Alcotest.(check bool) "rule logit rose" true (M.get model "act:rule" > before));
    Alcotest.test_case "SFT improves greedy accuracy on the training set" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:321 ~n:8 () in
        let base = Cap.base_3b () in
        let sft = M.clone ~name:"sft" base in
        Sft.train { Sft.default_config with Sft.epochs = 5 }
          sft
          (List.map (Sft.first_time_datum ~augmented:false) ds.S.samples);
        let accuracy model =
          List.length
            (List.filter
               (fun (s : S.sample) ->
                 let g =
                   M.generate model ~mode:Prompt.Generic ~rng:None ~sample_id:s.S.id s.S.modul
                     s.S.src
                 in
                 let vc = R.verify_completion s.S.modul ~src:s.S.src g.M.completion in
                 vc.R.verdict.Veriopt_alive.Alive.category = Veriopt_alive.Alive.Equivalent
                 && not g.M.copied)
               ds.S.samples)
        in
        Alcotest.(check bool) "sft at least as accurate" true (accuracy sft >= accuracy base));
  ]

let suite = ("rl", reward_tests @ grpo_tests @ sft_tests)

(* Unit and property tests for width-parametric bitvector arithmetic. *)

open Veriopt_ir

let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let widths = [ 1; 3; 7; 8; 13; 16; 31; 32; 33; 63; 64 ]

(* Reference semantics through Int64 at width <= 32 where exact wide math is
   available; at wider widths, algebraic identities are used instead. *)

let unit_tests =
  [
    Alcotest.test_case "mask clears high bits" `Quick (fun () ->
        check_i64 "mask8" 0xabL (Bits.mask 8 0x1abL);
        check_i64 "mask1" 1L (Bits.mask 1 3L);
        check_i64 "mask64" Int64.minus_one (Bits.mask 64 Int64.minus_one));
    Alcotest.test_case "to_signed sign-extends" `Quick (fun () ->
        check_i64 "i8 -1" (-1L) (Bits.to_signed 8 0xffL);
        check_i64 "i8 127" 127L (Bits.to_signed 8 0x7fL);
        check_i64 "i1 -1" (-1L) (Bits.to_signed 1 1L);
        check_i64 "i64 id" Int64.min_int (Bits.to_signed 64 Int64.min_int));
    Alcotest.test_case "min/max/all_ones" `Quick (fun () ->
        check_i64 "min8" 0x80L (Bits.min_signed 8);
        check_i64 "max8" 0x7fL (Bits.max_signed 8);
        check_i64 "ones8" 0xffL (Bits.all_ones 8);
        check_i64 "min64" Int64.min_int (Bits.min_signed 64);
        check_i64 "max64" Int64.max_int (Bits.max_signed 64));
    Alcotest.test_case "wrapping add/sub/mul" `Quick (fun () ->
        check_i64 "add wraps" 0L (Bits.add 8 0xffL 1L);
        check_i64 "sub wraps" 0xffL (Bits.sub 8 0L 1L);
        check_i64 "mul wraps" 0xfeL (Bits.mul 8 0xffL 2L));
    Alcotest.test_case "division semantics" `Quick (fun () ->
        check_i64 "udiv" 0x7fL (Bits.udiv 8 0xffL 2L);
        check_i64 "sdiv -1/2 = 0" 0L (Bits.sdiv 8 0xffL 2L);
        check_i64 "srem -7/2 = -1" (Bits.mask 8 (-1L)) (Bits.srem 8 (Bits.mask 8 (-7L)) 2L);
        check_i64 "urem" 1L (Bits.urem 8 0xffL 2L));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check_i64 "shl" 0xf0L (Bits.shl 8 0x0fL 4L);
        check_i64 "lshr" 0x0fL (Bits.lshr 8 0xf0L 4L);
        check_i64 "ashr keeps sign" 0xffL (Bits.ashr 8 0x80L 7L);
        check_bool "shift >= w poison" true (Bits.shift_amount_poison 8 8L);
        check_bool "shift < w ok" false (Bits.shift_amount_poison 8 7L));
    Alcotest.test_case "comparisons" `Quick (fun () ->
        check_bool "ult" true (Bits.ult 8 1L 0xffL);
        check_bool "slt signed" true (Bits.slt 8 0xffL 1L);
        check_bool "sle refl" true (Bits.sle 8 5L 5L));
    Alcotest.test_case "overflow predicates, signed add" `Quick (fun () ->
        check_bool "127+1 ov" true (Bits.add_nsw_overflow 8 127L 1L);
        check_bool "126+1 ok" false (Bits.add_nsw_overflow 8 126L 1L);
        check_bool "-128-1 ov" true (Bits.sub_nsw_overflow 8 0x80L 1L);
        check_bool "min64+min64 ov" true (Bits.add_nsw_overflow 64 Int64.min_int Int64.min_int));
    Alcotest.test_case "overflow predicates, unsigned" `Quick (fun () ->
        check_bool "255+1 nuw ov" true (Bits.add_nuw_overflow 8 255L 1L);
        check_bool "0-1 nuw ov" true (Bits.sub_nuw_overflow 8 0L 1L);
        check_bool "16*16 nuw ov (i8)" true (Bits.mul_nuw_overflow 8 16L 16L);
        check_bool "15*16 ok (i8)" false (Bits.mul_nuw_overflow 8 15L 16L);
        check_bool "mul_nuw 64 max*2" true (Bits.mul_nuw_overflow 64 Int64.minus_one 2L));
    Alcotest.test_case "overflow predicates, signed mul" `Quick (fun () ->
        check_bool "min*-1 ov" true (Bits.mul_nsw_overflow 8 0x80L 0xffL);
        check_bool "-1*min ov" true (Bits.mul_nsw_overflow 8 0xffL 0x80L);
        check_bool "64*2 ov i8" true (Bits.mul_nsw_overflow 8 64L 2L);
        check_bool "63*2 ok i8" false (Bits.mul_nsw_overflow 8 63L 2L);
        check_bool "0*x never" false (Bits.mul_nsw_overflow 8 0L 0x80L));
    Alcotest.test_case "shl flag violations" `Quick (fun () ->
        check_bool "shl nuw loses bit" true (Bits.shl_nuw_overflow 8 0x80L 1L);
        check_bool "shl nsw flips sign" true (Bits.shl_nsw_overflow 8 0x40L 1L);
        check_bool "shl ok" false (Bits.shl_nuw_overflow 8 0x01L 1L));
    Alcotest.test_case "exact violations" `Quick (fun () ->
        check_bool "7/2 inexact" true (Bits.udiv_exact_violation 8 7L 2L);
        check_bool "8/2 exact" false (Bits.udiv_exact_violation 8 8L 2L);
        check_bool "lshr exact" true (Bits.lshr_exact_violation 8 7L 1L));
    Alcotest.test_case "sdiv overflow" `Quick (fun () ->
        check_bool "min/-1" true (Bits.sdiv_overflow 8 0x80L 0xffL);
        check_bool "min/1" false (Bits.sdiv_overflow 8 0x80L 1L));
    Alcotest.test_case "casts" `Quick (fun () ->
        check_i64 "trunc" 0xcdL (Bits.trunc 16 8 0xabcdL);
        check_i64 "zext" 0xffL (Bits.zext 8 16 0xffL);
        check_i64 "sext" 0xffffL (Bits.sext 8 16 0xffL));
    Alcotest.test_case "power of two helpers" `Quick (fun () ->
        check_bool "8 is pow2" true (Bits.is_power_of_two 8 8L);
        check_bool "0 not pow2" false (Bits.is_power_of_two 8 0L);
        check_bool "6 not pow2" false (Bits.is_power_of_two 8 6L);
        Alcotest.(check int) "log2 8" 3 (Bits.log2 8 8L);
        Alcotest.(check int) "popcount 0xff" 8 (Bits.popcount 8 0xffL);
        check_bool "bit 3 of 8" true (Bits.bit 8 8L 3));
  ]

(* Properties.  For w <= 31 the exact result fits in int64 untruncated, so
   wrapping semantics can be cross-checked against wide arithmetic. *)

let gen_w_and_pair =
  QCheck2.Gen.(
    let* w = oneofl (List.filter (fun w -> w <= 31) widths) in
    let* a = map Int64.of_int (int_bound ((1 lsl w) - 1)) in
    let* b = map Int64.of_int (int_bound ((1 lsl w) - 1)) in
    return (w, a, b))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let property_tests =
  [
    prop "add wraps mod 2^w" gen_w_and_pair (fun (w, a, b) ->
        Bits.add w a b = Int64.rem (Int64.add a b) (Int64.shift_left 1L w));
    prop "sub = add neg" gen_w_and_pair (fun (w, a, b) ->
        Bits.sub w a b = Bits.add w a (Bits.neg w b));
    prop "nsw add predicate exact" gen_w_and_pair (fun (w, a, b) ->
        let wide = Int64.add (Bits.to_signed w a) (Bits.to_signed w b) in
        Bits.add_nsw_overflow w a b
        = (wide > Bits.to_signed w (Bits.max_signed w) || wide < Bits.to_signed w (Bits.min_signed w)));
    prop "nuw add predicate exact" gen_w_and_pair (fun (w, a, b) ->
        Bits.add_nuw_overflow w a b = (Int64.add a b >= Int64.shift_left 1L w));
    prop "nuw mul predicate exact" gen_w_and_pair (fun (w, a, b) ->
        (* products of 31-bit values fit in 62 bits *)
        Bits.mul_nuw_overflow w a b = (Int64.mul a b >= Int64.shift_left 1L w));
    prop "nsw mul predicate exact" gen_w_and_pair (fun (w, a, b) ->
        let wide = Int64.mul (Bits.to_signed w a) (Bits.to_signed w b) in
        Bits.mul_nsw_overflow w a b
        = (wide > Bits.to_signed w (Bits.max_signed w) || wide < Bits.to_signed w (Bits.min_signed w)));
    prop "udiv*b + urem = a" gen_w_and_pair (fun (w, a, b) ->
        b = 0L || Bits.add w (Bits.mul w (Bits.udiv w a b) b) (Bits.urem w a b) = a);
    prop "sdiv truncates toward zero" gen_w_and_pair (fun (w, a, b) ->
        b = 0L
        || Bits.sdiv_overflow w a b
        || Bits.to_signed w (Bits.sdiv w a b)
           = Int64.div (Bits.to_signed w a) (Bits.to_signed w b));
    prop "masked values canonical" gen_w_and_pair (fun (w, a, b) ->
        Bits.mask w (Bits.add w a b) = Bits.add w a b
        && Bits.mask w (Bits.mul w a b) = Bits.mul w a b);
    prop "to_signed/mask roundtrip" gen_w_and_pair (fun (w, a, _) ->
        Bits.mask w (Bits.to_signed w a) = a);
    prop "shl then lshr recovers low bits" gen_w_and_pair (fun (w, a, _) ->
        let s = Int64.of_int (w / 2) in
        Bits.lshr w (Bits.shl w a s) s = Bits.mask (w - (w / 2)) a);
  ]

let suite = ("bits", unit_tests @ property_tests)

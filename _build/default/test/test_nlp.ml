(* Tokenizer and BLEU. *)

module T = Veriopt_nlp.Tokenizer
module B = Veriopt_nlp.Bleu

let unit_tests =
  [
    Alcotest.test_case "tokenizer splits IR punctuation" `Quick (fun () ->
        Alcotest.(check (list string))
          "tokens"
          [ "%r"; "="; "add"; "i32"; "%x"; ","; "1" ]
          (T.tokenize "%r = add i32 %x, 1"));
    Alcotest.test_case "sigils glue to identifiers" `Quick (fun () ->
        Alcotest.(check (list string)) "global" [ "@main"; "("; ")" ] (T.tokenize "@main()"));
    Alcotest.test_case "count and limit" `Quick (fun () ->
        Alcotest.(check int) "count" 7 (T.count "%r = add i32 %x, 1");
        Alcotest.(check bool) "within" true (T.within_limit "short text");
        Alcotest.(check bool) "beyond" false
          (T.within_limit ~limit:3 "one two three four five"));
    Alcotest.test_case "BLEU identity is 1" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "id" 1.0 (B.score "add i32 %x, 1" "add i32 %x, 1"));
    Alcotest.test_case "BLEU of disjoint texts is 0" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "disjoint" 0.0 (B.score "aaa bbb ccc ddd" "eee fff ggg hhh"));
    Alcotest.test_case "BLEU is monotone in similarity" `Quick (fun () ->
        let reference = "define i32 @f ( i32 %x ) { ret i32 %x }" in
        let close = "define i32 @f ( i32 %x ) { ret i32 0 }" in
        let far = "define i64 @g ( ) { unreachable }" in
        Alcotest.(check bool) "ordering" true
          (B.score close reference > B.score far reference));
    Alcotest.test_case "brevity penalty punishes short candidates" `Quick (fun () ->
        let reference = "a b c d e f g h" in
        Alcotest.(check bool) "short worse" true
          (B.score "a b c d e f g h" reference > B.score "a b c" reference));
    Alcotest.test_case "empty candidate" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "empty vs nonempty" 0.0 (B.score "" "something");
        Alcotest.(check (float 1e-9)) "empty vs empty" 1.0 (B.score "" ""));
  ]

let gen_tokens =
  QCheck2.Gen.(list_size (int_range 1 30) (oneofl [ "a"; "b"; "c"; "%x"; "add"; "i32"; "," ]))

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"BLEU is within [0,1] and reflexive" gen_tokens
         (fun tokens ->
           let s = String.concat " " tokens in
           let self = B.score s s in
           let v = B.score s (String.concat " " (List.rev tokens)) in
           self >= 0.999 && v >= 0.0 && v <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200 ~name:"tokenizer concatenation recovers word tokens"
         gen_tokens (fun tokens ->
           (* tokenizing the joined string yields exactly the tokens *)
           T.tokenize (String.concat " " tokens) = tokens));
  ]

let suite = ("nlp", unit_tests @ property_tests)

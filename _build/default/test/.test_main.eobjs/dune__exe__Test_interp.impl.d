test/test_interp.ml: Alcotest Ast Bits Int64 List Parser QCheck2 QCheck_alcotest Types Veriopt_alive Veriopt_data Veriopt_eval Veriopt_ir Veriopt_llm Veriopt_passes

test/test_passes.ml: Alcotest Ast Builder Fmt Hashtbl Int64 List Parser Printer QCheck2 QCheck_alcotest String Validator Veriopt_alive Veriopt_cost Veriopt_data Veriopt_ir Veriopt_llm Veriopt_passes

test/test_data.ml: Alcotest Ast List Printer String Types Validator Veriopt_data Veriopt_eval Veriopt_ir Veriopt_nlp

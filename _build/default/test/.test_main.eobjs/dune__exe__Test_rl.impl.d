test/test_rl.ml: Alcotest Array Ast Builder List Parser Veriopt_alive Veriopt_data Veriopt_ir Veriopt_llm Veriopt_rl

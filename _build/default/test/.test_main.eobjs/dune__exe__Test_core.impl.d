test/test_core.ml: Alcotest List Printer Veriopt Veriopt_alive Veriopt_cost Veriopt_data Veriopt_eval Veriopt_ir Veriopt_llm Veriopt_passes

test/test_main.ml: Alcotest Test_alive Test_bits Test_core Test_cost Test_data Test_interp Test_ir Test_llm Test_nlp Test_passes Test_rl Test_smt

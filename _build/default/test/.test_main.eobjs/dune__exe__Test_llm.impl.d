test/test_llm.ml: Alcotest Ast List Parser Printer Random String Validator Veriopt_ir Veriopt_llm Veriopt_nlp Veriopt_passes

test/test_ir.ml: Alcotest Ast Builder Cfg Hashtbl List Parser Printer QCheck2 QCheck_alcotest String Validator Veriopt_data Veriopt_ir

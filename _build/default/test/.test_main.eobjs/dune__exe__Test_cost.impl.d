test/test_cost.ml: Alcotest Ast List Parser QCheck2 QCheck_alcotest Veriopt_cost Veriopt_data Veriopt_ir

test/test_alive.ml: Alcotest Ast Cfg Fmt Int64 List Parser Printer QCheck2 QCheck_alcotest String Types Validator Veriopt_alive Veriopt_data Veriopt_eval Veriopt_ir Veriopt_llm Veriopt_passes

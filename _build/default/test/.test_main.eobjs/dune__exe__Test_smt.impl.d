test/test_smt.ml: Alcotest Array Fmt Int64 List QCheck2 QCheck_alcotest Veriopt_ir Veriopt_smt

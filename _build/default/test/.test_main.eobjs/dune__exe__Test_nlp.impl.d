test/test_nlp.ml: Alcotest List QCheck2 QCheck_alcotest String Veriopt_nlp

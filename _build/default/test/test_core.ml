(* The top layer: evaluation harness and the verified-fallback backend. *)

open Veriopt_ir
module E = Veriopt.Evaluate
module B = Veriopt.Backend
module S = Veriopt_data.Suite
module Cap = Veriopt_llm.Capability
module A = Veriopt_alive.Alive
module I = Veriopt_eval.Interp

let backend_tests =
  [
    Alcotest.test_case "backend output is always safe" `Quick (fun () ->
        (* whatever the model emits, the deployed output must be equivalent
           to the input: either the verified model output or the input *)
        let ds = S.build ~verify:false ~seed0:2024 ~n:6 () in
        let model = Cap.base_3b () in
        List.iter
          (fun (s : S.sample) ->
            let o = B.optimize ~max_conflicts:40_000 model s.S.modul s.S.src in
            let v = A.verify_funcs ~max_conflicts:40_000 s.S.modul ~src:s.S.src ~tgt:o.B.output in
            Alcotest.(check bool) "deployed output equivalent or inconclusive" true
              (match v.A.category with
              | A.Equivalent | A.Inconclusive -> true
              | A.Semantic_error | A.Syntax_error -> false))
          ds.S.samples);
    Alcotest.test_case "fallback keeps the input on failure" `Quick (fun () ->
        (* a model hard-wired to corrupt everything must always fall back *)
        let model = Veriopt_llm.Model.create ~noise_scale:0.0 "corruptor" in
        Veriopt_llm.Model.set model "act:corrupt" 10.0;
        Veriopt_llm.Model.set model "format:ok" 10.0;
        let ds = S.build ~verify:false ~seed0:2025 ~n:4 () in
        List.iter
          (fun (s : S.sample) ->
            let o = B.optimize model s.S.modul s.S.src in
            Alcotest.(check bool) "fell back" true (not o.B.used_model);
            Alcotest.(check string) "output = input"
              (Printer.func_to_string s.S.src)
              (Printer.func_to_string o.B.output))
          ds.S.samples);
    Alcotest.test_case "best-of-both never loses to instcombine" `Quick (fun () ->
        let ds = S.build ~verify:false ~seed0:2026 ~n:5 () in
        let model = Cap.base_3b () in
        List.iter
          (fun (s : S.sample) ->
            let best, _ = B.optimize_best_of_both model s.S.modul s.S.src in
            let ic, _ = Veriopt_passes.Pass_manager.instcombine s.S.modul s.S.src in
            Alcotest.(check bool) "<= instcombine latency" true
              (Veriopt_cost.Latency.of_func best <= Veriopt_cost.Latency.of_func ic))
          ds.S.samples);
  ]

let evaluate_tests =
  [
    Alcotest.test_case "category counts partition the set" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2027 ~n:10 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        let c = res.E.counts in
        Alcotest.(check int) "partition" c.E.total
          (c.E.correct + c.E.semantic + c.E.syntax + c.E.inconclusive));
    Alcotest.test_case "fallback rows carry -O0 metrics" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2028 ~n:8 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        List.iter
          (fun (r : E.row) ->
            match r.E.category with
            | E.Syntax_error | E.Semantic_error | E.Inconclusive ->
              Alcotest.(check int) "fallback latency" r.E.m_src.E.latency r.E.m_out.E.latency
            | E.Correct_copy ->
              Alcotest.(check int) "copy latency" r.E.m_src.E.latency r.E.m_out.E.latency
            | E.Correct_different -> ())
          res.E.rows);
    Alcotest.test_case "comparisons count every row once" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2029 ~n:8 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        let c =
          E.compare_metric res.E.rows
            ~metric:(fun m -> m.E.latency)
            ~out:E.out_metrics ~base:E.src_metrics
        in
        Alcotest.(check int) "partition" res.E.counts.E.total (c.E.better + c.E.worse + c.E.tie));
    Alcotest.test_case "geomean of identical rows is 1" `Quick (fun () ->
        let ds = S.build ~verify:true ~seed0:2030 ~n:5 () in
        let res = E.run ~max_conflicts:40_000 (Cap.base_3b ()) ds.S.samples in
        Alcotest.(check (float 1e-9)) "identity" 1.0
          (E.geomean_speedup res.E.rows
             ~metric:(fun m -> m.E.latency)
             ~out:E.src_metrics ~base:E.src_metrics));
  ]

let suite = ("core", backend_tests @ evaluate_tests)

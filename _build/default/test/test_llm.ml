(* The surrogate policy: prompts and format parsing, action application,
   generation determinism, capability profiles, and the diagnosis head. *)

open Veriopt_ir
module M = Veriopt_llm.Model
module Cap = Veriopt_llm.Capability
module Prompt = Veriopt_llm.Prompt
module Actions = Veriopt_llm.Actions
module Diag = Veriopt_llm.Diag

let m0 = Ast.empty_module
let parse = Parser.parse_func

let sample_src =
  "define i32 @f(i32 %x) {\nentry:\n  %a = mul i32 %x, 1\n  %r = add i32 %a, 0\n  ret i32 %r\n}"

let prompt_tests =
  [
    Alcotest.test_case "answer extraction" `Quick (fun () ->
        let out =
          Prompt.render { Prompt.think = None; answer = "define ..."; well_formed = true }
        in
        Alcotest.(check (option string)) "answer" (Some "define ...") (Prompt.answer_of out);
        Alcotest.(check bool) "format ok" true (Prompt.format_ok out));
    Alcotest.test_case "malformed output fails format check" `Quick (fun () ->
        let out =
          Prompt.render { Prompt.think = None; answer = "define ..."; well_formed = false }
        in
        Alcotest.(check bool) "format bad" false (Prompt.format_ok out));
    Alcotest.test_case "think block round-trips" `Quick (fun () ->
        let out =
          Prompt.render
            { Prompt.think = Some ("attempt", Some "ERROR: bad"); answer = "final"; well_formed = true }
        in
        match Prompt.think_of out with
        | Some t -> Alcotest.(check bool) "contains diagnosis" true
            (let sub = "ERROR: bad" in
             let n = String.length t and m = String.length sub in
             let rec go i = i + m <= n && (String.sub t i m = sub || go (i + 1)) in
             go 0)
        | None -> Alcotest.fail "missing think");
    Alcotest.test_case "templates embed the IR" `Quick (fun () ->
        let p = Prompt.generic_template "MARKER_IR" in
        Alcotest.(check bool) "embedded" true
          (let sub = "MARKER_IR" in
           let n = String.length p and m = String.length sub in
           let rec go i = i + m <= n && (String.sub p i m = sub || go (i + 1)) in
           go 0));
  ]

let action_tests =
  [
    Alcotest.test_case "rule sites enumerate applicable rewrites" `Quick (fun () ->
        let f = parse sample_src in
        let sites = Actions.enumerate_rule_sites m0 f in
        Alcotest.(check bool) "mul-one available" true
          (List.exists (fun (r, _) -> r = "mul-one") sites);
        Alcotest.(check bool) "add-zero available" true
          (List.exists (fun (r, _) -> r = "add-zero") sites));
    Alcotest.test_case "apply_rule performs the rewrite" `Quick (fun () ->
        let f = parse sample_src in
        let f' = Actions.apply_rule m0 f "mul-one" "a" in
        Alcotest.(check bool) "mul gone" true
          (List.for_all
             (fun b ->
               List.for_all
                 (fun ni -> match ni.Ast.instr with Ast.Binop { op = Ast.Mul; _ } -> false | _ -> true)
                 b.Ast.instrs)
             f'.Ast.blocks));
    Alcotest.test_case "unsound edits keep the IR valid" `Quick (fun () ->
        let f = parse sample_src in
        List.iter
          (fun k ->
            if Actions.unsound_sites f k > 0 then
              let f' = Actions.apply_unsound f k 0 in
              match Validator.validate_func f' with
              | Ok () -> ()
              | Error es ->
                Alcotest.failf "unsound %s produced invalid IR: %s" (Actions.unsound_name k)
                  (String.concat "; " es))
          [ Actions.Wrong_constant; Actions.Predicate_flip; Actions.Bogus_flag ]);
    Alcotest.test_case "corruptions break parse or validation" `Quick (fun () ->
        let f = parse sample_src in
        let rng = Random.State.make [| 1 |] in
        List.iter
          (fun c ->
            let text = Actions.corrupt_text rng c (Printer.func_to_string f) in
            match Parser.parse_func_result text with
            | Error _ -> ()
            | Ok g -> (
              match Validator.validate_func g with
              | Error _ -> ()
              | Ok () ->
                (* some corruptions (e.g. garbage on a comment-free line) can
                   miss; they must at least change the text *)
                Alcotest.(check bool)
                  (Actions.corruption_name c ^ " changed text")
                  true
                  (text <> Printer.func_to_string f)))
          Actions.all_corruptions);
    Alcotest.test_case "pass gating by applicability" `Quick (fun () ->
        let f = parse "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}" in
        Alcotest.(check bool) "no mem2reg without allocas" false
          (Actions.pass_applicable m0 f Actions.Mem2reg));
  ]

let generation_tests =
  [
    Alcotest.test_case "greedy decoding is deterministic" `Quick (fun () ->
        let model = Cap.base_3b () in
        let f = parse sample_src in
        let g1 = M.generate model ~mode:Prompt.Generic ~rng:None ~sample_id:5 m0 f in
        let g2 = M.generate model ~mode:Prompt.Generic ~rng:None ~sample_id:5 m0 f in
        Alcotest.(check string) "same completion" g1.M.completion g2.M.completion);
    Alcotest.test_case "different inputs produce different behavior" `Quick (fun () ->
        (* the pseudo-noise makes greedy decoding input-sensitive *)
        let model = Cap.base_3b () in
        let f = parse sample_src in
        let outputs =
          List.init 40 (fun i ->
              (M.generate model ~mode:Prompt.Generic ~rng:None ~sample_id:i m0 f).M.copied)
        in
        Alcotest.(check bool) "not constant" true
          (List.exists (fun c -> c) outputs && List.exists (fun c -> not c) outputs));
    Alcotest.test_case "sampled rollouts respect the rng seed" `Quick (fun () ->
        let model = Cap.base_3b () in
        let f = parse sample_src in
        let gen seed =
          let rng = Random.State.make [| seed |] in
          (M.generate model ~mode:Prompt.Generic ~rng:(Some rng) ~sample_id:1 m0 f).M.completion
        in
        Alcotest.(check string) "same seed same rollout" (gen 9) (gen 9));
    Alcotest.test_case "augmented mode emits think and diagnosis" `Quick (fun () ->
        let model = Cap.base_3b () in
        let f = parse sample_src in
        let g = M.generate model ~mode:Prompt.Augmented ~rng:None ~sample_id:3 m0 f in
        Alcotest.(check bool) "claimed set" true (g.M.claimed <> None);
        Alcotest.(check bool) "think present" true (Prompt.think_of g.M.completion <> None));
    Alcotest.test_case "every generation records gradient steps" `Quick (fun () ->
        let model = Cap.base_3b () in
        let f = parse sample_src in
        let g = M.generate model ~mode:Prompt.Generic ~rng:None ~sample_id:7 m0 f in
        Alcotest.(check bool) "steps nonempty" true (List.length g.M.steps >= 2));
    Alcotest.test_case "clone isolates parameters" `Quick (fun () ->
        let a = Cap.base_3b () in
        let b = M.clone ~name:"b" a in
        M.set b "act:copy" 99.0;
        Alcotest.(check bool) "independent" true (M.get a "act:copy" <> 99.0));
    Alcotest.test_case "frozen parameters resist updates" `Quick (fun () ->
        let a = Cap.base_3b () in
        M.set a "test:frozen" 1.0;
        M.freeze a "test:frozen";
        Alcotest.(check bool) "is frozen" true (M.is_frozen a "test:frozen"));
  ]

let capability_tests =
  [
    Alcotest.test_case "larger models know more rules" `Quick (fun () ->
        let known kappa =
          List.length
            (List.filter (Cap.known_rule kappa) Veriopt_passes.Instcombine.rule_names)
        in
        Alcotest.(check bool) "monotone" true (known 0.35 <= known 0.62 && known 0.62 <= known 0.8));
    Alcotest.test_case "larger models hallucinate less" `Quick (fun () ->
        let small = Cap.init ~name:"s" 0.35 in
        let large = Cap.init ~name:"l" 0.8 in
        Alcotest.(check bool) "rate ordering" true
          (small.M.halluc_rate >= large.M.halluc_rate));
    Alcotest.test_case "zoo is in parameter-size order" `Quick (fun () ->
        Alcotest.(check (list string))
          "order"
          [ "Qwen-0.5B"; "Qwen-3B"; "LLM-Compiler-7B"; "Qwen-7B"; "Llama-8B"; "Qwen-32B" ]
          (List.map fst Cap.zoo));
    Alcotest.test_case "LLM-Compiler favours format compliance" `Quick (fun () ->
        let lc = Cap.llm_compiler_7b () in
        let base = Cap.base_3b () in
        Alcotest.(check bool) "format prior" true
          (M.get lc "format:ok" > M.get base "format:ok"));
  ]

let diag_tests =
  [
    Alcotest.test_case "oracle classes match verdict classes" `Quick (fun () ->
        Alcotest.(check bool) "corruption -> syntax" true
          (Diag.oracle_class (Diag.Saw_corruption Actions.Garbage_token) = Diag.C_syntax);
        Alcotest.(check bool) "bogus flag -> poison" true
          (Diag.oracle_class (Diag.Saw_unsound Actions.Bogus_flag) = Diag.C_more_poisonous);
        Alcotest.(check bool) "sound -> ok" true (Diag.oracle_class Diag.Saw_only_sound = Diag.C_ok));
    Alcotest.test_case "verdict messages classify back" `Quick (fun () ->
        Alcotest.(check bool) "poison msg" true
          (Diag.class_of_verdict_message `Semantic "ERROR: Target is more poisonous than source"
          = Diag.C_more_poisonous);
        Alcotest.(check bool) "value msg" true
          (Diag.class_of_verdict_message `Semantic "ERROR: Value mismatch\nExample:..."
          = Diag.C_value_mismatch);
        Alcotest.(check bool) "syntax" true
          (Diag.class_of_verdict_message `Syntax "ERROR: invalid IR" = Diag.C_syntax));
    Alcotest.test_case "class messages resemble verifier diagnostics (BLEU)" `Quick (fun () ->
        let model_msg = Diag.message_of_class Diag.C_more_poisonous in
        let alive_msg = "ERROR: Target is more poisonous than source\nExample:\n  arg0 = 64" in
        Alcotest.(check bool) "high bleu on right class" true
          (Veriopt_nlp.Bleu.score model_msg alive_msg
          > Veriopt_nlp.Bleu.score (Diag.message_of_class Diag.C_trace) alive_msg));
  ]

let suite = ("llm", prompt_tests @ action_tests @ generation_tests @ capability_tests @ diag_tests)

(* The translation validator: verdict categories, refinement semantics,
   diagnostics, and the key soundness property — solver verdicts never
   contradict the concrete interpreter. *)

open Veriopt_ir
module A = Veriopt_alive.Alive
module I = Veriopt_eval.Interp
module Actions = Veriopt_llm.Actions

let m0 = Ast.empty_module
let parse = Parser.parse_func

let category =
  Alcotest.testable
    (fun ppf -> function
      | A.Equivalent -> Fmt.string ppf "Equivalent"
      | A.Semantic_error -> Fmt.string ppf "Semantic_error"
      | A.Syntax_error -> Fmt.string ppf "Syntax_error"
      | A.Inconclusive -> Fmt.string ppf "Inconclusive")
    ( = )

let check_verdict ?(m = m0) name expected src tgt =
  let v = A.verify_text m ~src:(parse src) ~tgt_text:tgt in
  Alcotest.check category name expected v.A.category

let equivalence_tests =
  [
    Alcotest.test_case "identity is equivalent and a copy" `Quick (fun () ->
        let src = "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}" in
        let v = A.verify_text m0 ~src:(parse src) ~tgt_text:src in
        Alcotest.check category "eq" A.Equivalent v.A.category;
        Alcotest.(check bool) "copy" true v.A.copy_of_input);
    Alcotest.test_case "x+0 -> x" `Quick (fun () ->
        check_verdict "fold" A.Equivalent
          "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}"
          "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}");
    Alcotest.test_case "mul 2 -> shl 1" `Quick (fun () ->
        check_verdict "strength" A.Equivalent
          "define i8 @f(i8 %x) {\nentry:\n  %r = mul i8 %x, 2\n  ret i8 %r\n}"
          "define i8 @f(i8 %x) {\nentry:\n  %r = shl i8 %x, 1\n  ret i8 %r\n}");
    Alcotest.test_case "sdiv by -1 -> negation" `Quick (fun () ->
        check_verdict "sdiv" A.Equivalent
          "define i8 @f(i8 %x) {\nentry:\n  %r = sdiv i8 %x, -1\n  ret i8 %r\n}"
          "define i8 @f(i8 %x) {\nentry:\n  %r = sub i8 0, %x\n  ret i8 %r\n}");
    Alcotest.test_case "branch/phi vs select" `Quick (fun () ->
        check_verdict "cfg" A.Equivalent
          {|define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %j
b:
  br label %j
j:
  %r = phi i32 [ 0, %a ], [ %x, %b ]
  ret i32 %r
}|}
          {|define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 %x, 0
  %r = select i1 %c, i32 0, i32 %x
  ret i32 %r
}|});
    Alcotest.test_case "store-to-load forwarding" `Quick (fun () ->
        check_verdict "mem" A.Equivalent
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}"
          "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}");
    Alcotest.test_case "dropping a redundant store to a local is fine" `Quick (fun () ->
        check_verdict "dead-store" A.Equivalent
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 1, ptr %p, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}"
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}");
    Alcotest.test_case "matching impure call traces" `Quick (fun () ->
        let m =
          Parser.parse_module "declare void @sink(i32)\ndefine void @f(i32 %x) {\nentry:\n  call void @sink(i32 %x)\n  ret void\n}"
        in
        let src = List.hd m.Ast.funcs in
        let v =
          A.verify_text m ~src
            ~tgt_text:"define void @f(i32 %x) {\nentry:\n  call void @sink(i32 %x)\n  ret void\n}"
        in
        Alcotest.check category "calls" A.Equivalent v.A.category);
    Alcotest.test_case "loops verify within the unroll bound" `Quick (fun () ->
        let src =
          {|define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, 3
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  %r = mul i32 %i, 1
  ret i32 %r
}|}
        in
        let tgt =
          {|define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, 3
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}|}
        in
        let v = A.verify_text m0 ~src:(parse src) ~tgt_text:tgt in
        Alcotest.check category "loop" A.Equivalent v.A.category;
        Alcotest.(check bool) "bounded" true v.A.bounded);
  ]

let error_tests =
  [
    Alcotest.test_case "off-by-one constant is a semantic error" `Quick (fun () ->
        check_verdict "wrong" A.Semantic_error
          "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}"
          "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 2\n  ret i32 %r\n}");
    Alcotest.test_case "counterexample inputs are concrete" `Quick (fun () ->
        let src = "define i8 @f(i8 %x) {\nentry:\n  %r = sub i8 %x, 1\n  ret i8 %r\n}" in
        let tgt = "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}" in
        let v = A.verify_text m0 ~src:(parse src) ~tgt_text:tgt in
        Alcotest.check category "sem" A.Semantic_error v.A.category;
        Alcotest.(check bool) "has example" true (v.A.example <> []));
    Alcotest.test_case "introducing poison is an error" `Quick (fun () ->
        let v =
          A.verify_text m0
            ~src:(parse "define i8 @f(i8 %x) {\nentry:\n  %r = mul i8 %x, 2\n  ret i8 %r\n}")
            ~tgt_text:"define i8 @f(i8 %x) {\nentry:\n  %r = shl nsw i8 %x, 1\n  ret i8 %r\n}"
        in
        Alcotest.check category "poison" A.Semantic_error v.A.category;
        Alcotest.(check bool) "message mentions poison" true
          (let msg = v.A.message in
           let sub = "more poisonous" in
           let n = String.length msg and m = String.length sub in
           let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
           go 0));
    Alcotest.test_case "removing poison is fine (refinement)" `Quick (fun () ->
        check_verdict "depoison" A.Equivalent
          "define i8 @f(i8 %x) {\nentry:\n  %r = shl nsw i8 %x, 1\n  ret i8 %r\n}"
          "define i8 @f(i8 %x) {\nentry:\n  %r = shl i8 %x, 1\n  ret i8 %r\n}");
    Alcotest.test_case "dropping an observable store is an error" `Quick (fun () ->
        let m = Parser.parse_module "@g = global i32 0\ndefine void @f(i32 %x) {\nentry:\n  store i32 %x, ptr @g, align 4\n  ret void\n}" in
        let src = List.hd m.Ast.funcs in
        let v = A.verify_text m ~src ~tgt_text:"define void @f(i32 %x) {\nentry:\n  ret void\n}" in
        Alcotest.check category "store" A.Semantic_error v.A.category);
    Alcotest.test_case "dropping an impure call is an error" `Quick (fun () ->
        let m =
          Parser.parse_module "declare void @sink(i32)\ndefine void @f(i32 %x) {\nentry:\n  call void @sink(i32 %x)\n  ret void\n}"
        in
        let src = List.hd m.Ast.funcs in
        let v =
          A.verify_text m ~src ~tgt_text:"define void @f(i32 %x) {\nentry:\n  ret void\n}"
        in
        Alcotest.(check bool) "not equivalent" true (v.A.category <> A.Equivalent));
    Alcotest.test_case "introducing UB is an error" `Quick (fun () ->
        check_verdict "ub" A.Semantic_error
          "define i32 @f(i32 %x) {\nentry:\n  ret i32 0\n}"
          "define i32 @f(i32 %x) {\nentry:\n  %r = udiv i32 1, %x\n  %z = mul i32 %r, 0\n  ret i32 %z\n}");
    Alcotest.test_case "unparseable text is a syntax error" `Quick (fun () ->
        check_verdict "garbage" A.Syntax_error
          "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}" "this is not IR at all");
    Alcotest.test_case "invalid SSA is a syntax error" `Quick (fun () ->
        check_verdict "ssa" A.Syntax_error
          "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
          "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, %ghost\n  ret i32 %r\n}");
    Alcotest.test_case "signature change is a syntax error" `Quick (fun () ->
        check_verdict "sig" A.Syntax_error
          "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}"
          "define i64 @f(i64 %x) {\nentry:\n  ret i64 %x\n}");
    Alcotest.test_case "unsupported constructs are inconclusive" `Quick (fun () ->
        check_verdict "ptrtoint" A.Inconclusive
          "define i64 @f(i64 %x) {\nentry:\n  %p = alloca i64, align 8\n  %a = ptrtoint ptr %p to i64\n  ret i64 %a\n}"
          "define i64 @f(i64 %x) {\nentry:\n  %p = alloca i64, align 8\n  %a = ptrtoint ptr %p to i64\n  ret i64 %a\n}");
  ]

(* Soundness property: whenever the verifier says Equivalent, the concrete
   interpreter agrees on random inputs; whenever it reports a semantic error,
   its counterexample is never refuted by the interpreter (the verdict layer
   revalidates internally, so we additionally spot-check here). *)

let refines_concretely (m : Ast.modul) (src : Ast.func) (tgt : Ast.func) (args : I.value list) :
    bool =
  let run f =
    match I.run ~fuel:100_000 m f args with
    | o -> `Ok o
    | exception I.Undefined_behavior _ -> `Ub
    | exception I.Out_of_fuel -> `Fuel
  in
  match (run src, run tgt) with
  | `Ub, _ -> true
  | `Fuel, _ | _, `Fuel -> true
  | `Ok _, `Ub -> false
  | `Ok s, `Ok t -> (
    s.I.call_trace = t.I.call_trace
    &&
    match (s.I.ret, t.I.ret) with
    | None, None -> true
    | Some I.VPoison, Some _ -> true
    | Some a, Some b -> a = b
    | _ -> false)

let gen_case =
  QCheck2.Gen.(
    let* seed = int_bound 30_000 in
    let* mutate = int_bound 6 in
    let* args = list_size (return 4) (map Int64.of_int int) in
    return (seed, mutate, args))

let soundness_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:35
       ~name:"Equivalent verdicts are never refuted by concrete execution" gen_case
       (fun (seed, mutate, args) ->
         let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
         let m, src = Veriopt_data.Lower.lower cf in
         (* candidate: instcombine output, possibly with an unsound mutation *)
         let base, _ = Veriopt_passes.Pass_manager.instcombine m src in
         let tgt =
           if mutate = 0 then base
           else
             let kinds =
               Actions.
                 [
                   Wrong_constant;
                   Flip_operands;
                   Predicate_flip;
                   Drop_store;
                   Bogus_flag;
                   Width_confusion;
                 ]
             in
             Actions.apply_unsound base (List.nth kinds (mutate - 1)) 0
         in
         match Validator.validate_func ~module_:m tgt with
         | Error _ -> QCheck2.assume_fail ()
         | Ok () -> (
           let v = A.verify_funcs ~max_conflicts:60_000 m ~src ~tgt in
           match v.A.category with
           | A.Equivalent ->
             (* check agreement on the random inputs *)
             let concrete_args =
               List.map2
                 (fun (ty, _) a -> I.vint (Types.width ty) a)
                 src.Ast.params
                 (List.filteri (fun i _ -> i < List.length src.Ast.params) args
                 @ List.init (max 0 (List.length src.Ast.params - List.length args)) (fun _ -> 0L))
             in
             refines_concretely m src tgt concrete_args
           | A.Semantic_error | A.Syntax_error | A.Inconclusive -> true)))

let unroll_tests =
  [
    Alcotest.test_case "unroll is identity on acyclic functions" `Quick (fun () ->
        let f = parse "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}" in
        Alcotest.(check bool) "same" true (Veriopt_alive.Unroll.unroll 4 f == f));
    Alcotest.test_case "unrolled loops are acyclic" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %n) {\nentry:\n  br label %h\nh:\n  %i = phi i32 [ 0, %entry ], [ %i2, %b ]\n  %c = icmp slt i32 %i, %n\n  br i1 %c, label %b, label %x\nb:\n  %i2 = add i32 %i, 1\n  br label %h\nx:\n  ret i32 %i\n}"
        in
        let u = Veriopt_alive.Unroll.unroll 4 f in
        Alcotest.(check bool) "acyclic" false (Cfg.has_loop (Cfg.of_func u));
        Alcotest.(check bool) "has exhausted block" true
          (List.exists
             (fun b -> b.Ast.label = Veriopt_alive.Unroll.exhausted_label)
             u.Ast.blocks));
    Alcotest.test_case "values defined before the loop keep one name" `Quick (fun () ->
        let f =
          parse
            "define i32 @f(i32 %n) {\nentry:\n  %base = add i32 %n, 7\n  br label %h\nh:\n  %i = phi i32 [ 0, %entry ], [ %i2, %b ]\n  %c = icmp slt i32 %i, %base\n  br i1 %c, label %b, label %x\nb:\n  %i2 = add i32 %i, 1\n  br label %h\nx:\n  ret i32 %i\n}"
        in
        let u = Veriopt_alive.Unroll.unroll 3 f in
        (* every copy's compare must still reference %base, never %base.uN *)
        let text = Printer.func_to_string u in
        let contains sub =
          let n = String.length text and m = String.length sub in
          let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "no renamed before-loop value used" false (contains "%base.u"));
  ]

let mixed_width_tests =
  [
    Alcotest.test_case "fig-8 pattern: two i32 stores read back as i64" `Quick (fun () ->
        (* the paper's Fig. 8: struct fields zeroed through i32 stores, the
           whole i64 slot loaded and returned *)
        check_verdict "fig8" A.Equivalent
          "%struct.S = type { i32, i32 }\ndefine i64 @get_d() {\n  %1 = alloca i64, align 8\n  %2 = bitcast i64* %1 to i32*\n  store i32 0, i32* %2, align 8\n  %3 = getelementptr inbounds %struct.S, i64* %1, i64 0, i32 1\n  store i32 0, i32* %3, align 4\n  %4 = load i64, i64* %1, align 8\n  ret i64 %4\n}"
          "define i64 @get_d() {\n  ret i64 0\n}");
    Alcotest.test_case "narrow load of a wide store" `Quick (fun () ->
        check_verdict "low byte" A.Equivalent
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %b = load i8, ptr %p, align 1\n  %z = zext i8 %b to i32\n  ret i32 %z\n}"
          "define i32 @f(i32 %x) {\nentry:\n  %r = and i32 %x, 255\n  ret i32 %r\n}");
    Alcotest.test_case "mixed-width mismatch is caught" `Quick (fun () ->
        check_verdict "wrong mask" A.Semantic_error
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %b = load i8, ptr %p, align 1\n  %z = zext i8 %b to i32\n  ret i32 %z\n}"
          "define i32 @f(i32 %x) {\nentry:\n  %r = and i32 %x, 127\n  ret i32 %r\n}");
    Alcotest.test_case "wide load of two narrow stores, little-endian order" `Quick (fun () ->
        check_verdict "concat" A.Equivalent
          "define i16 @f(i8 %a, i8 %b) {\nentry:\n  %p = alloca i16, align 2\n  store i8 %a, ptr %p, align 1\n  %q = getelementptr [2 x i8], ptr %p, i64 0, i64 1\n  store i8 %b, ptr %q, align 1\n  %v = load i16, ptr %p, align 2\n  ret i16 %v\n}"
          "define i16 @f(i8 %a, i8 %b) {\nentry:\n  %za = zext i8 %a to i16\n  %zb = zext i8 %b to i16\n  %hb = shl i16 %zb, 8\n  %v = or i16 %hb, %za\n  ret i16 %v\n}");
  ]

let limitation_tests =
  [
    Alcotest.test_case "bounded validation misses beyond-bound behaviour" `Quick (fun () ->
        (* the paper's SVI: Alive2 is a *bounded* validator; a difference
           that only manifests after the unroll bound is not caught, and the
           verdict is explicitly marked [bounded] *)
        let make ret_on_exit =
          Fmt.str
            {|define i32 @f(i32 %%n) {
entry:
  br label %%h
h:
  %%i = phi i32 [ 0, %%entry ], [ %%i2, %%b ]
  %%c = icmp slt i32 %%i, 100
  br i1 %%c, label %%b, label %%x
b:
  %%i2 = add i32 %%i, 1
  br label %%h
x:
  ret i32 %s
}|}
            ret_on_exit
        in
        (* the two functions differ only at loop exit, reached after 100
           iterations -- far beyond the unroll bound *)
        let src = parse (make "%i") and tgt = parse (make "0") in
        let v = A.verify_funcs ~unroll:4 m0 ~src ~tgt in
        Alcotest.check category "bounded equivalence claimed" A.Equivalent v.A.category;
        Alcotest.(check bool) "flagged as bounded" true v.A.bounded;
        (* concrete execution sees the difference immediately *)
        match
          Veriopt_eval.Exec_oracle.equivalent Ast.empty_module ~src ~tgt
        with
        | Veriopt_eval.Exec_oracle.Io_different _ -> ()
        | _ -> Alcotest.fail "oracle should distinguish them");
    Alcotest.test_case "larger unroll bounds catch more" `Quick (fun () ->
        (* same shape with a 3-iteration loop: within the default bound the
           difference is caught *)
        let make ret_on_exit =
          Fmt.str
            {|define i32 @f(i32 %%n) {
entry:
  br label %%h
h:
  %%i = phi i32 [ 0, %%entry ], [ %%i2, %%b ]
  %%c = icmp slt i32 %%i, 3
  br i1 %%c, label %%b, label %%x
b:
  %%i2 = add i32 %%i, 1
  br label %%h
x:
  ret i32 %s
}|}
            ret_on_exit
        in
        let src = parse (make "%i") and tgt = parse (make "0") in
        let v = A.verify_funcs ~unroll:8 m0 ~src ~tgt in
        Alcotest.check category "caught within bound" A.Semantic_error v.A.category);
  ]

let suite =
  ( "alive",
    equivalence_tests @ error_tests @ unroll_tests @ mixed_width_tests @ limitation_tests
    @ [ soundness_property ] )

(* Concrete interpreter semantics: values, poison, UB, memory, calls. *)

open Veriopt_ir
module I = Veriopt_eval.Interp

let parse = Parser.parse_func

let run_i32 ?(m = Ast.empty_module) src args =
  let f = parse src in
  (I.run m f (List.map (fun v -> I.vint 32 v) args)).I.ret

let check_ret msg expected actual =
  match actual with
  | Some (I.VInt { v; _ }) -> Alcotest.(check int64) msg expected v
  | Some I.VPoison -> Alcotest.failf "%s: got poison" msg
  | _ -> Alcotest.failf "%s: unexpected result" msg

let expect_ub src args =
  let f = parse src in
  match I.run Ast.empty_module f (List.map (fun v -> I.vint 32 v) args) with
  | _ -> Alcotest.fail "expected UB"
  | exception I.Undefined_behavior _ -> ()

let expect_poison src args =
  match run_i32 src args with
  | Some I.VPoison -> ()
  | _ -> Alcotest.fail "expected poison"

let arithmetic_tests =
  [
    Alcotest.test_case "basic arithmetic" `Quick (fun () ->
        check_ret "add" 8L
          (run_i32 "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 3\n  ret i32 %r\n}" [ 5L ]));
    Alcotest.test_case "wrapping" `Quick (fun () ->
        check_ret "wrap" 0L
          (run_i32
             "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}"
             [ 0xffffffffL ]));
    Alcotest.test_case "signed division" `Quick (fun () ->
        check_ret "sdiv" (Bits.mask 32 (-2L))
          (run_i32
             "define i32 @f(i32 %x) {\nentry:\n  %r = sdiv i32 %x, 3\n  ret i32 %r\n}"
             [ Bits.mask 32 (-7L) ]));
    Alcotest.test_case "icmp and select" `Quick (fun () ->
        let src =
          "define i32 @f(i32 %x) {\nentry:\n  %c = icmp slt i32 %x, 0\n  %r = select i1 %c, i32 1, i32 2\n  ret i32 %r\n}"
        in
        check_ret "neg" 1L (run_i32 src [ Bits.mask 32 (-5L) ]);
        check_ret "pos" 2L (run_i32 src [ 5L ]));
    Alcotest.test_case "casts" `Quick (fun () ->
        check_ret "trunc+sext" (Bits.mask 32 (-1L))
          (run_i32
             "define i32 @f(i32 %x) {\nentry:\n  %t = trunc i32 %x to i8\n  %s = sext i8 %t to i32\n  ret i32 %s\n}"
             [ 0xffL ]));
  ]

let ub_tests =
  [
    Alcotest.test_case "division by zero is UB" `Quick (fun () ->
        expect_ub "define i32 @f(i32 %x) {\nentry:\n  %r = udiv i32 %x, 0\n  ret i32 %r\n}" [ 1L ]);
    Alcotest.test_case "sdiv overflow is UB" `Quick (fun () ->
        expect_ub
          "define i32 @f(i32 %x) {\nentry:\n  %r = sdiv i32 %x, -1\n  ret i32 %r\n}"
          [ 0x80000000L ]);
    Alcotest.test_case "branch on poison is UB" `Quick (fun () ->
        expect_ub
          "define i32 @f(i32 %x) {\nentry:\n  %p = add nsw i32 %x, 1\n  %c = icmp eq i32 %p, 0\n  br i1 %c, label %a, label %b\na:\n  ret i32 1\nb:\n  ret i32 2\n}"
          [ 0x7fffffffL ]);
    Alcotest.test_case "unreachable is UB" `Quick (fun () ->
        expect_ub "define i32 @f(i32 %x) {\nentry:\n  unreachable\n}" [ 0L ]);
    Alcotest.test_case "null store is UB" `Quick (fun () ->
        expect_ub
          "define i32 @f(i32 %x) {\nentry:\n  store i32 %x, ptr null, align 4\n  ret i32 0\n}"
          [ 1L ]);
    Alcotest.test_case "out-of-bounds store is UB" `Quick (fun () ->
        expect_ub
          "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i8, align 1\n  store i32 %x, ptr %p, align 4\n  ret i32 0\n}"
          [ 1L ]);
  ]

let poison_tests =
  [
    Alcotest.test_case "nsw overflow yields poison" `Quick (fun () ->
        expect_poison
          "define i32 @f(i32 %x) {\nentry:\n  %r = add nsw i32 %x, 1\n  ret i32 %r\n}"
          [ 0x7fffffffL ]);
    Alcotest.test_case "no overflow, no poison" `Quick (fun () ->
        check_ret "ok" 6L
          (run_i32 "define i32 @f(i32 %x) {\nentry:\n  %r = add nsw i32 %x, 1\n  ret i32 %r\n}" [ 5L ]));
    Alcotest.test_case "oversized shift is poison" `Quick (fun () ->
        expect_poison
          "define i32 @f(i32 %x) {\nentry:\n  %r = shl i32 %x, 32\n  ret i32 %r\n}" [ 1L ]);
    Alcotest.test_case "poison propagates through arithmetic" `Quick (fun () ->
        expect_poison
          "define i32 @f(i32 %x) {\nentry:\n  %p = shl i32 %x, 40\n  %r = add i32 %p, 1\n  ret i32 %r\n}"
          [ 1L ]);
    Alcotest.test_case "exact division violation is poison" `Quick (fun () ->
        expect_poison
          "define i32 @f(i32 %x) {\nentry:\n  %r = udiv exact i32 %x, 2\n  ret i32 %r\n}" [ 7L ]);
    Alcotest.test_case "freeze stops poison" `Quick (fun () ->
        match
          run_i32
            "define i32 @f(i32 %x) {\nentry:\n  %p = shl i32 %x, 40\n  %fr = freeze i32 %p\n  ret i32 %fr\n}"
            [ 1L ]
        with
        | Some (I.VInt _) -> ()
        | _ -> Alcotest.fail "freeze should produce a defined value");
    Alcotest.test_case "store/load preserves poison" `Quick (fun () ->
        expect_poison
          "define i32 @f(i32 %x) {\nentry:\n  %a = alloca i32, align 4\n  %p = shl i32 %x, 40\n  store i32 %p, ptr %a, align 4\n  %v = load i32, ptr %a, align 4\n  ret i32 %v\n}"
          [ 1L ]);
  ]

let memory_tests =
  [
    Alcotest.test_case "store/load roundtrip" `Quick (fun () ->
        check_ret "rt" 42L
          (run_i32
             "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %x, ptr %p, align 4\n  %v = load i32, ptr %p, align 4\n  ret i32 %v\n}"
             [ 42L ]));
    Alcotest.test_case "narrow store into struct field via gep" `Quick (fun () ->
        check_ret "field" 7L
          (run_i32
             {|define i32 @f(i32 %x) {
entry:
  %p = alloca { i32, i32 }, align 4
  %q = getelementptr inbounds { i32, i32 }, ptr %p, i64 0, i32 1
  store i32 7, ptr %q, align 4
  %v = load i32, ptr %q, align 4
  ret i32 %v
}|}
             [ 0L ]));
    Alcotest.test_case "distinct allocas do not alias" `Quick (fun () ->
        check_ret "noalias" 1L
          (run_i32
             {|define i32 @f(i32 %x) {
entry:
  %p = alloca i32, align 4
  %q = alloca i32, align 4
  store i32 1, ptr %p, align 4
  store i32 2, ptr %q, align 4
  %v = load i32, ptr %p, align 4
  ret i32 %v
}|}
             [ 0L ]));
    Alcotest.test_case "little-endian multi-width access" `Quick (fun () ->
        check_ret "low byte" 0xddL
          (run_i32
             {|define i32 @f(i32 %x) {
entry:
  %p = alloca i32, align 4
  store i32 %x, ptr %p, align 4
  %b = load i8, ptr %p, align 1
  %z = zext i8 %b to i32
  ret i32 %z
}|}
             [ 0xaabbccddL ]));
    Alcotest.test_case "global initializer visible" `Quick (fun () ->
        let m = Parser.parse_module "@g = global i32 11\ndefine i32 @f() {\nentry:\n  %v = load i32, ptr @g, align 4\n  ret i32 %v\n}" in
        let f = List.hd m.Ast.funcs in
        match (I.run m f []).I.ret with
        | Some (I.VInt { v; _ }) -> Alcotest.(check int64) "init" 11L v
        | _ -> Alcotest.fail "bad result");
  ]

let control_tests =
  [
    Alcotest.test_case "loop computes a sum" `Quick (fun () ->
        check_ret "sum 0..4" 10L
          (run_i32
             {|define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}|}
             [ 5L ]));
    Alcotest.test_case "phi reads simultaneous values" `Quick (fun () ->
        (* swap idiom through phis *)
        check_ret "swap" 1L
          (run_i32
             {|define i32 @f(i32 %n) {
entry:
  br label %loop
loop:
  %a = phi i32 [ 0, %entry ], [ %b, %loop ]
  %b = phi i32 [ 1, %entry ], [ %a, %loop ]
  %c = icmp eq i32 %a, 0
  br i1 %c, label %loop, label %out
out:
  ret i32 %a
}|}
             [ 0L ]));
    Alcotest.test_case "switch dispatch" `Quick (fun () ->
        let src =
          {|define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [ i32 1, label %a i32 2, label %b ]
a:
  ret i32 100
b:
  ret i32 200
d:
  ret i32 300
}|}
        in
        check_ret "case1" 100L (run_i32 src [ 1L ]);
        check_ret "case2" 200L (run_i32 src [ 2L ]);
        check_ret "default" 300L (run_i32 src [ 9L ]));
    Alcotest.test_case "infinite loop raises Out_of_fuel" `Quick (fun () ->
        let f = parse "define i32 @f(i32 %x) {\nentry:\n  br label %entry2\nentry2:\n  br label %entry2\n}" in
        match I.run ~fuel:1000 Ast.empty_module f [ I.vint 32 0L ] with
        | _ -> Alcotest.fail "expected fuel exhaustion"
        | exception I.Out_of_fuel -> ());
    Alcotest.test_case "call trace records impure calls" `Quick (fun () ->
        let m =
          Parser.parse_module
            "declare void @sink(i32)\ndefine i32 @f(i32 %x) {\nentry:\n  call void @sink(i32 %x)\n  ret i32 0\n}"
        in
        let f = List.hd m.Ast.funcs in
        let outcome = I.run m f [ I.vint 32 9L ] in
        Alcotest.(check int) "one call" 1 (List.length outcome.I.call_trace));
  ]

(* Property: the interpreter is deterministic. *)
let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:40 ~name:"interpretation is deterministic"
         QCheck2.Gen.(pair (int_bound 50_000) (int_bound 1000))
         (fun (seed, arg) ->
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let m, f = Veriopt_data.Lower.lower cf in
           let args =
             List.map
               (fun (ty, _) -> I.vint (Types.width ty) (Int64.of_int arg))
               f.Ast.params
           in
           let run () =
             match I.run ~fuel:50_000 m f args with
             | o -> `Ret o.I.ret
             | exception I.Undefined_behavior msg -> `Ub msg
             | exception I.Out_of_fuel -> `Fuel
           in
           run () = run ()));
  ]

module O = Veriopt_eval.Exec_oracle

let oracle_tests =
  [
    Alcotest.test_case "oracle accepts equivalent functions" `Quick (fun () ->
        let src = parse "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 %x, 0\n  ret i32 %r\n}" in
        let tgt = parse "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}" in
        match O.equivalent Ast.empty_module ~src ~tgt with
        | O.Io_equivalent n -> Alcotest.(check bool) "ran samples" true (n > 8)
        | _ -> Alcotest.fail "expected IO equivalence");
    Alcotest.test_case "oracle catches a boundary-value bug" `Quick (fun () ->
        let src = parse "define i8 @f(i8 %x) {\nentry:\n  %r = sub i8 %x, 1\n  ret i8 %r\n}" in
        let tgt = parse "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}" in
        match O.equivalent Ast.empty_module ~src ~tgt with
        | O.Io_different _ -> ()
        | _ -> Alcotest.fail "expected a distinguishing input");
    Alcotest.test_case "oracle overestimates where the verifier does not" `Quick (fun () ->
        (* wrong only on one magic 32-bit input: finite testing waves it
           through, formal verification rejects it -- the paper's central
           motivation (via LLM-Vectorizer) *)
        let src = parse "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}" in
        let tgt =
          parse
            "define i32 @f(i32 %x) {\nentry:\n  %c = icmp eq i32 %x, 123456789\n  %r = select i1 %c, i32 0, i32 %x\n  ret i32 %r\n}"
        in
        (match O.equivalent Ast.empty_module ~src ~tgt with
        | O.Io_equivalent _ -> ()
        | _ -> Alcotest.fail "finite testing should miss the magic input");
        let v = Veriopt_alive.Alive.verify_funcs Ast.empty_module ~src ~tgt in
        Alcotest.(check bool) "formal verification catches it" true
          (v.Veriopt_alive.Alive.category = Veriopt_alive.Alive.Semantic_error));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:30
         ~name:"a distinguishing input refutes formal equivalence"
         QCheck2.Gen.(pair (int_bound 20_000) (int_bound 5))
         (fun (seed, k) ->
           let cf = Veriopt_data.Cgen.generate ~seed ~name:"t" () in
           let m, src = Veriopt_data.Lower.lower cf in
           let base, _ = Veriopt_passes.Pass_manager.instcombine m src in
           let tgt =
             Veriopt_llm.Actions.apply_unsound base
               (List.nth
                  Veriopt_llm.Actions.
                    [ Wrong_constant; Predicate_flip; Drop_store; Flip_operands; Bogus_flag; Width_confusion ]
                  k)
               0
           in
           match Veriopt_ir.Validator.validate_func ~module_:m tgt with
           | Error _ -> QCheck2.assume_fail ()
           | Ok () -> (
             match O.equivalent m ~src ~tgt with
             | O.Io_different _ ->
               (* the oracle found a bug: the formal verdict must agree --
                  except for bounded (loop-unrolled) validation, which is
                  allowed to miss beyond-bound behaviour, exactly Alive2's
                  documented limitation (paper SVI) *)
               let v = Veriopt_alive.Alive.verify_funcs ~max_conflicts:60_000 m ~src ~tgt in
               v.Veriopt_alive.Alive.category <> Veriopt_alive.Alive.Equivalent
               || v.Veriopt_alive.Alive.bounded
             | O.Io_equivalent _ | O.Io_unsupported _ -> true)));
  ]

let suite =
  ( "interp",
    arithmetic_tests @ ub_tests @ poison_tests @ memory_tests @ control_tests @ oracle_tests
    @ property_tests )

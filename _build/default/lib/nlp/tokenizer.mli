(** Code tokenizer for IR text, standing in for the Qwen tokenizer: the
    2048-token dataset filter and BLEU's token stream. *)

val is_word_char : char -> bool
val tokenize : string -> string list
val count : string -> int

val default_limit : int
(** 2048, as in the paper. *)

val within_limit : ?limit:int -> string -> bool

(** A code tokenizer for IR text: identifiers/keywords, numbers, sigils and
    punctuation become separate tokens.  It stands in for the Qwen tokenizer
    in two roles from the paper: enforcing the 2048-token context filter on
    dataset functions, and providing the token streams BLEU is computed
    over. *)

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let tokenize (s : string) : string list =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do
        incr i
      done;
      out := String.sub s start (!i - start) :: !out
    end
    else begin
      (* sigils %, @, # glue to the following word, like LLVM identifiers *)
      if (c = '%' || c = '@' || c = '#') && !i + 1 < n && is_word_char s.[!i + 1] then begin
        let start = !i in
        incr i;
        while !i < n && is_word_char s.[!i] do
          incr i
        done;
        out := String.sub s start (!i - start) :: !out
      end
      else begin
        out := String.make 1 c :: !out;
        incr i
      end
    end
  done;
  List.rev !out

let count (s : string) : int = List.length (tokenize s)

(** The paper filters training functions to at most 2048 tokens. *)
let default_limit = 2048

let within_limit ?(limit = default_limit) (s : string) = count s <= limit

lib/nlp/bleu.mli:

lib/nlp/tokenizer.mli:

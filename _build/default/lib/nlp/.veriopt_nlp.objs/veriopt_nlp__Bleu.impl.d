lib/nlp/bleu.ml: Array Hashtbl List Option Tokenizer

(** BLEU (Papineni et al., 2002): geometric mean of clipped n-gram
    precisions (n = 1..4) with a brevity penalty.  Zero counts are smoothed
    (Lin & Och's +1 smoothing on n > 1) so short code snippets still receive
    a usable gradient — the paper relies on BLEU as a dense shaping reward
    precisely to avoid gradient starvation. *)

let ngrams n tokens =
  let arr = Array.of_list tokens in
  let len = Array.length arr in
  let table = Hashtbl.create 64 in
  for i = 0 to len - n do
    let g = Array.to_list (Array.sub arr i n) in
    Hashtbl.replace table g (1 + Option.value ~default:0 (Hashtbl.find_opt table g))
  done;
  table

let clipped_precision n candidate reference : float * int =
  let cand = ngrams n candidate in
  let refs = ngrams n reference in
  let total = ref 0 and matched = ref 0 in
  Hashtbl.iter
    (fun g c ->
      total := !total + c;
      let r = Option.value ~default:0 (Hashtbl.find_opt refs g) in
      matched := !matched + min c r)
    cand;
  if !total = 0 then (0., 0)
  else if n > 1 then (float_of_int (!matched + 1) /. float_of_int (!total + 1), !total)
  else (float_of_int !matched /. float_of_int !total, !total)

(** BLEU-4 over token lists; returns a score in [0, 1]. *)
let score_tokens (candidate : string list) (reference : string list) : float =
  if candidate = [] || reference = [] then if candidate = reference then 1.0 else 0.0
  else begin
    let max_n = min 4 (min (List.length candidate) (List.length reference)) in
    let precisions =
      List.init max_n (fun i ->
          let p, total = clipped_precision (i + 1) candidate reference in
          if total = 0 then 1.0 else p)
    in
    if List.exists (fun p -> p <= 0.) precisions then 0.0
    else begin
      let log_avg =
        List.fold_left (fun acc p -> acc +. log p) 0. precisions /. float_of_int max_n
      in
      let c = float_of_int (List.length candidate) in
      let r = float_of_int (List.length reference) in
      let brevity = if c >= r then 1.0 else exp (1. -. (r /. c)) in
      brevity *. exp log_avg
    end
  end

(** BLEU over raw strings, via the IR tokenizer. *)
let score (candidate : string) (reference : string) : float =
  score_tokens (Tokenizer.tokenize candidate) (Tokenizer.tokenize reference)

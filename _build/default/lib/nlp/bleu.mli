(** BLEU (Papineni et al., 2002) with +1 smoothing on n > 1: the paper's
    dense shaping reward and diagnostic-similarity score. *)

val score_tokens : string list -> string list -> float
(** BLEU-4 over token lists, in [0, 1]. *)

val score : string -> string -> float
(** BLEU over raw strings via the IR tokenizer. *)

(** Control-flow graph simplification: constant branch folding, identical
    target collapsing, unreachable block removal, single-predecessor block
    merging, and empty-block forwarding.  The paper observes the trained
    model picking up simplifycfg-like behaviour emergently (its Fig. 10);
    this pass both serves as that part of the action space and cleans up
    after mem2reg. *)

open Veriopt_ir
open Ast

type trace_entry = { rule : string; site : string }

let remove_phi_incoming_from (b : block) (preds : label list) : block =
  {
    b with
    instrs =
      List.filter_map
        (fun ni ->
          match ni.instr with
          | Phi p -> (
            let incoming = List.filter (fun (_, from) -> List.mem from preds) p.incoming in
            match incoming with
            | [] -> None (* dead phi in unreachable or phi-less context *)
            | _ -> Some { ni with instr = Phi { p with incoming } })
          | _ -> Some ni)
        b.instrs;
  }

(* Fold constant conditional branches and switches; collapse identical
   targets. *)
let fold_branches (f : func) : func * trace_entry list =
  let trace = ref [] in
  let names = Builder.names_of_func f in
  let blocks =
    List.map
      (fun b ->
        match b.term with
        | CondBr { cond = _; if_true; if_false } when if_true = if_false ->
          trace := { rule = "br-same-target"; site = b.label } :: !trace;
          { b with term = Br if_true }
        | CondBr { cond = Const (CInt { value; _ }); if_true; if_false } ->
          trace := { rule = "br-const-cond"; site = b.label } :: !trace;
          { b with term = Br (if value = 1L then if_true else if_false) }
        | Switch { value = Const (CInt { value; _ }); default; cases; _ } ->
          trace := { rule = "switch-const"; site = b.label } :: !trace;
          let target =
            match List.assoc_opt value cases with Some l -> l | None -> default
          in
          { b with term = Br target }
        | Switch { default; cases; _ } when List.for_all (fun (_, l) -> l = default) cases ->
          trace := { rule = "switch-same-targets"; site = b.label } :: !trace;
          { b with term = Br default }
        | Switch { ty; value; default; cases = [ (c, l) ] } when l <> default ->
          (* a single-case switch is a compare-and-branch *)
          trace := { rule = "switch-to-br"; site = b.label } :: !trace;
          let cond = Builder.fresh names "swcmp" in
          {
            b with
            instrs =
              b.instrs
              @ [
                  {
                    name = Some cond;
                    instr =
                      Icmp { pred = Eq; ty; lhs = value; rhs = const_int (Types.width ty) c };
                  };
                ];
            term = CondBr { cond = Var cond; if_true = l; if_false = default };
          }
        | _ -> b)
      f.blocks
  in
  (* A branch no longer reaching a block must be purged from its phis. *)
  let f = { f with blocks } in
  let cfg = Cfg.of_func f in
  let blocks =
    List.map
      (fun b -> remove_phi_incoming_from b (List.sort_uniq compare (Cfg.predecessors cfg b.label)))
      f.blocks
  in
  ({ f with blocks }, List.rev !trace)

(* Remove blocks not reachable from entry. *)
let remove_unreachable (f : func) : func * trace_entry list =
  let cfg = Cfg.of_func f in
  let dead = List.filter (fun b -> not (Cfg.is_reachable cfg b.label)) f.blocks in
  if dead = [] then (f, [])
  else begin
    let blocks = List.filter (fun b -> Cfg.is_reachable cfg b.label) f.blocks in
    let f = { f with blocks } in
    let cfg = Cfg.of_func f in
    let blocks =
      List.map
        (fun b ->
          remove_phi_incoming_from b (List.sort_uniq compare (Cfg.predecessors cfg b.label)))
        f.blocks
    in
    ( { f with blocks },
      List.map (fun b -> { rule = "remove-unreachable"; site = b.label }) dead )
  end

(* Merge a block into its unique predecessor when that predecessor branches
   unconditionally to it. *)
let merge_single_pred (f : func) : func * trace_entry list =
  let trace = ref [] in
  let f = ref f in
  let changed = ref true in
  while !changed do
    changed := false;
    let cfg = Cfg.of_func !f in
    let entry = (entry_block !f).label in
    let candidate =
      List.find_opt
        (fun b ->
          b.label <> entry
          && Cfg.is_reachable cfg b.label
          &&
          match Cfg.predecessors cfg b.label with
          | [ p ] -> (
            match (Cfg.block_exn cfg p).term with
            | Br l when l = b.label ->
              (* no phis to rewrite: a single-pred block's phis are trivial
                 and instcombine removes them first *)
              List.for_all
                (fun ni -> match ni.instr with Phi _ -> false | _ -> true)
                b.instrs
            | _ -> false)
          | _ -> false)
        (!f).blocks
    in
    match candidate with
    | Some b ->
      let p = List.hd (Cfg.predecessors cfg b.label) in
      let blocks =
        List.filter_map
          (fun blk ->
            if blk.label = b.label then None
            else if blk.label = p then
              Some { blk with instrs = blk.instrs @ b.instrs; term = b.term }
            else Some blk)
          (!f).blocks
      in
      (* successors' phis referring to b now come from p *)
      let blocks =
        List.map
          (fun blk ->
            {
              blk with
              instrs =
                List.map
                  (fun ni ->
                    match ni.instr with
                    | Phi ph ->
                      {
                        ni with
                        instr =
                          Phi
                            {
                              ph with
                              incoming =
                                List.map
                                  (fun (op, from) -> (op, if from = b.label then p else from))
                                  ph.incoming;
                            };
                      }
                    | _ -> ni)
                  blk.instrs;
            })
          blocks
      in
      f := { !f with blocks };
      trace := { rule = "merge-block"; site = b.label } :: !trace;
      changed := true
    | None -> ()
  done;
  (!f, List.rev !trace)

(* Forward empty blocks: a block with no instructions ending in 'br %c' can
   be bypassed, provided %c's phis stay well-formed. *)
let forward_empty_blocks (f : func) : func * trace_entry list =
  let trace = ref [] in
  let f = ref f in
  let changed = ref true in
  while !changed do
    changed := false;
    let cfg = Cfg.of_func !f in
    let entry = (entry_block !f).label in
    let ok_to_forward b target =
      b.label <> entry && b.instrs = [] && b.label <> target
      &&
      let target_block = Cfg.block_exn cfg target in
      let preds_b = List.sort_uniq compare (Cfg.predecessors cfg b.label) in
      let preds_t = List.sort_uniq compare (Cfg.predecessors cfg target) in
      (* avoid creating duplicate phi edges or losing phi information *)
      List.for_all
        (fun ni ->
          match ni.instr with
          | Phi _ -> List.for_all (fun p -> not (List.mem p preds_t)) preds_b
          | _ -> true)
        target_block.instrs
      && List.for_all (fun p -> not (List.mem p preds_t)) preds_b
    in
    let candidate =
      List.find_map
        (fun b ->
          match b.term with
          | Br target when Cfg.is_reachable cfg b.label && ok_to_forward b target ->
            Some (b, target)
          | _ -> None)
        (!f).blocks
    in
    match candidate with
    | Some (b, target) ->
      let preds_b = List.sort_uniq compare (Cfg.predecessors cfg b.label) in
      let redirect l = if l = b.label then target else l in
      let blocks =
        List.filter_map
          (fun blk ->
            if blk.label = b.label then None
            else
              let term =
                match blk.term with
                | Br l -> Br (redirect l)
                | CondBr c ->
                  CondBr { c with if_true = redirect c.if_true; if_false = redirect c.if_false }
                | Switch s ->
                  Switch
                    {
                      s with
                      default = redirect s.default;
                      cases = List.map (fun (v, l) -> (v, redirect l)) s.cases;
                    }
                | t -> t
              in
              let instrs =
                if blk.label = target then
                  List.map
                    (fun ni ->
                      match ni.instr with
                      | Phi ph ->
                        let incoming =
                          List.concat_map
                            (fun (op, from) ->
                              if from = b.label then List.map (fun p -> (op, p)) preds_b
                              else [ (op, from) ])
                            ph.incoming
                        in
                        { ni with instr = Phi { ph with incoming } }
                      | _ -> ni)
                    blk.instrs
                else blk.instrs
              in
              Some { blk with instrs; term })
          (!f).blocks
      in
      f := { !f with blocks };
      trace := { rule = "forward-empty-block"; site = b.label } :: !trace;
      changed := true
    | None -> ()
  done;
  (!f, List.rev !trace)

(** The full simplifycfg pipeline, iterated to fixpoint. *)
let run (f : func) : func * trace_entry list =
  let rec go f acc iters =
    if iters > 50 then (f, acc)
    else
      let f1, t1 = fold_branches f in
      let f2, t2 = remove_unreachable f1 in
      let f3, t3 = merge_single_pred f2 in
      let f4, t4 = forward_empty_blocks f3 in
      let news = t1 @ t2 @ t3 @ t4 in
      if news = [] then (f4, acc) else go f4 (acc @ news) (iters + 1)
  in
  go f [] 0

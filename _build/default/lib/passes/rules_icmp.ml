(** Peephole rules over icmp. *)

open Veriopt_ir
open Ast
open Rewrite

(* icmp pred x, x *)
let icmp_self =
  rule ~family:"icmp" "icmp-self" (fun _ctx ni ->
      match ni.instr with
      | Icmp { pred; lhs; rhs; _ } when same_operand lhs rhs -> (
        match pred with
        | Eq | Ule | Uge | Sle | Sge -> Some (Value (const_bool true))
        | Ne | Ult | Ugt | Slt | Sgt -> Some (Value (const_bool false)))
      | _ -> None)

(* comparisons against the extremes of the value range *)
let icmp_range =
  rule ~family:"icmp" "icmp-range" (fun _ctx ni ->
      match ni.instr with
      | Icmp { pred; ty; lhs = _; rhs; _ } -> (
        match (cint rhs, ty) with
        | Some (w, c), Types.Int _ -> (
          let umax = Bits.all_ones w and smax = Bits.max_signed w and smin = Bits.min_signed w in
          match pred with
          | Ult when c = 0L -> Some (Value (const_bool false))
          | Uge when c = 0L -> Some (Value (const_bool true))
          | Ugt when c = umax -> Some (Value (const_bool false))
          | Ule when c = umax -> Some (Value (const_bool true))
          | Sgt when c = smax -> Some (Value (const_bool false))
          | Sle when c = smax -> Some (Value (const_bool true))
          | Slt when c = smin -> Some (Value (const_bool false))
          | Sge when c = smin -> Some (Value (const_bool true))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* icmp ult x, 1 -> icmp eq x, 0 ; icmp ugt x, umax-1 -> icmp eq x, umax *)
let icmp_boundary_to_eq =
  rule ~family:"icmp" "icmp-boundary-to-eq" (fun _ctx ni ->
      match ni.instr with
      | Icmp { pred; ty; lhs; rhs } -> (
        match (cint rhs, ty) with
        | Some (w, c), Types.Int _ -> (
          match pred with
          | Ult when c = 1L -> Some (Instr (Icmp { pred = Eq; ty; lhs; rhs = const_int w 0L }))
          | Ugt when c = Bits.sub w (Bits.all_ones w) 1L ->
            Some (Instr (Icmp { pred = Eq; ty; lhs; rhs = const_int w (Bits.all_ones w) }))
          | Slt when c = Bits.add w (Bits.min_signed w) 1L ->
            Some (Instr (Icmp { pred = Eq; ty; lhs; rhs = const_int w (Bits.min_signed w) }))
          | Sgt when c = Bits.sub w (Bits.max_signed w) 1L ->
            Some (Instr (Icmp { pred = Eq; ty; lhs; rhs = const_int w (Bits.max_signed w) }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* icmp eq/ne (add x, c1), c2 -> icmp eq/ne x, c2-c1 *)
let icmp_eq_add_const =
  rule ~family:"icmp" "icmp-eq-add-const" (fun ctx ni ->
      match ni.instr with
      | Icmp { pred = (Eq | Ne) as pred; ty; lhs; rhs } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = Add; lhs = x; rhs = inner; _ }), Some (w, c2) -> (
          match cint inner with
          | Some (_, c1) when one_use ctx lhs ->
            Some (Instr (Icmp { pred; ty; lhs = x; rhs = const_int w (Bits.sub w c2 c1) }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* icmp eq (xor x, y), 0 -> icmp eq x, y (and ne alike) *)
let icmp_xor_zero =
  rule ~family:"icmp" "icmp-xor-zero" (fun ctx ni ->
      match ni.instr with
      | Icmp { pred = (Eq | Ne) as pred; ty; lhs; rhs } when is_zero rhs -> (
        match def_of ctx lhs with
        | Some (Binop { op = Xor; lhs = x; rhs = y; _ }) when one_use ctx lhs ->
          Some (Instr (Icmp { pred; ty; lhs = x; rhs = y }))
        | _ -> None)
      | _ -> None)

(* icmp eq (zext x), c: out-of-range c decides the comparison; in-range
   narrows to the source width *)
let icmp_zext_const =
  rule ~family:"icmp" "icmp-zext-const" (fun ctx ni ->
      match ni.instr with
      | Icmp { pred = (Eq | Ne) as pred; ty = _; lhs; rhs } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Cast { op = ZExt; src_ty = Types.Int sw; value; _ }), Some (w, c)
          when one_use ctx lhs ->
          if Bits.zext sw w (Bits.mask sw c) <> c then
            (* c not representable: eq is false, ne is true *)
            Some (Value (const_bool (pred = Ne)))
          else
            Some
              (Instr
                 (Icmp { pred; ty = Types.Int sw; lhs = value; rhs = const_int sw (Bits.mask sw c) }))
        | _ -> None)
      | _ -> None)

(* icmp ugt x, 0 -> icmp ne x, 0 *)
let icmp_ugt_zero =
  rule ~family:"icmp" "icmp-ugt-zero" (fun _ctx ni ->
      match ni.instr with
      | Icmp { pred = Ugt; ty; lhs; rhs } when is_zero rhs ->
        Some (Instr (Icmp { pred = Ne; ty; lhs; rhs }))
      | _ -> None)

(* known-bits decided comparisons: eq/ne where a known bit differs *)
let icmp_known_bits =
  rule ~family:"icmp" "icmp-known-bits" (fun ctx ni ->
      match ni.instr with
      | Icmp { pred = (Eq | Ne) as pred; ty = Types.Int w; lhs; rhs } -> (
        match cint rhs with
        | Some (_, c) ->
          let k = known ctx w lhs in
          (* a bit known 1 where c has 0, or known 0 where c has 1, decides it *)
          if
            Int64.logand k.Known_bits.one (Bits.lognot w c) <> 0L
            || Int64.logand k.Known_bits.zero c <> 0L
          then Some (Value (const_bool (pred = Ne)))
          else None
        | None -> None)
      | _ -> None)

let rules =
  [
    icmp_self;
    icmp_range;
    icmp_boundary_to_eq;
    icmp_eq_add_const;
    icmp_xor_zero;
    icmp_zext_const;
    icmp_ugt_zero;
    icmp_known_bits;
  ]

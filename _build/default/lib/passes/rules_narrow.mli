(** Peephole rules: the narrow family.  Individual rules are registered through
    {!Instcombine.all_rules}; only the list is exported. *)

val rules : Rewrite.rule list

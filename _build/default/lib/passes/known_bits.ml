(** A computeKnownBits-style forward bit analysis.

    For an SSA value we compute a pair (known_zero, known_one) of masks: bits
    proven 0 and bits proven 1 on every execution.  Depth-limited recursion
    through defining instructions, the same structure as LLVM's
    [computeKnownBits]; several instcombine rules consult it. *)

open Veriopt_ir
open Ast

type t = { zero : int64; one : int64 } (* invariant: zero land one = 0 *)

let unknown = { zero = 0L; one = 0L }
let exact w v = { zero = Bits.lognot w v; one = v }
let is_contradiction k = Int64.logand k.zero k.one <> 0L

(** Bits known at all (either polarity). *)
let known_mask k = Int64.logor k.zero k.one

let max_depth = 6

let rec compute ?(depth = 0) (defs : (var, instr) Hashtbl.t) (w : int) (op : operand) : t =
  match op with
  | Const (CInt { width; value }) -> exact width value
  | Const (CUndef _) | Const (CPoison _) | Const CNull | Global _ -> unknown
  | Var v -> (
    if depth >= max_depth then unknown
    else
      match Hashtbl.find_opt defs v with
      | None -> unknown
      | Some i -> compute_instr ~depth:(depth + 1) defs w i)

and compute_instr ~depth defs w (i : instr) : t =
  let recurse op = compute ~depth defs w op in
  let join a b = { zero = Int64.logand a.zero b.zero; one = Int64.logand a.one b.one } in
  match i with
  | Binop { op = And; lhs; rhs; _ } ->
    let a = recurse lhs and b = recurse rhs in
    { zero = Int64.logor a.zero b.zero; one = Int64.logand a.one b.one }
  | Binop { op = Or; lhs; rhs; _ } ->
    let a = recurse lhs and b = recurse rhs in
    { zero = Int64.logand a.zero b.zero; one = Int64.logor a.one b.one }
  | Binop { op = Xor; lhs; rhs; _ } ->
    let a = recurse lhs and b = recurse rhs in
    let known = Int64.logand (known_mask a) (known_mask b) in
    let v = Int64.logxor a.one b.one in
    { zero = Int64.logand known (Int64.lognot v); one = Int64.logand known v }
  | Binop { op = Shl; lhs; rhs = Const (CInt { value = s; _ }); _ }
    when not (Bits.shift_amount_poison w s) ->
    let a = recurse lhs in
    let s = Int64.to_int s in
    {
      zero =
        Int64.logor
          (Bits.mask w (Int64.shift_left a.zero s))
          (Bits.mask w (Int64.sub (Int64.shift_left 1L s) 1L));
      one = Bits.mask w (Int64.shift_left a.one s);
    }
  | Binop { op = LShr; lhs; rhs = Const (CInt { value = s; _ }); _ }
    when not (Bits.shift_amount_poison w s) ->
    let a = recurse lhs in
    let s = Int64.to_int s in
    let high_zeros =
      (* bits shifted in from the top are zero *)
      Int64.logand (Bits.mask w Int64.minus_one)
        (Int64.lognot (Bits.mask w (Int64.sub (Int64.shift_left 1L (w - s)) 1L)))
    in
    {
      zero = Int64.logor (Bits.lshr w a.zero (Int64.of_int s)) high_zeros;
      one = Bits.lshr w a.one (Int64.of_int s);
    }
  | Binop { op = Add; lhs; rhs; _ } ->
    (* trailing zeros: if both operands have k low bits fully known, the sum's
       low bits are computable *)
    let a = recurse lhs and b = recurse rhs in
    let rec low_known n =
      if n >= w then n
      else if Bits.bit w (known_mask a) n && Bits.bit w (known_mask b) n then low_known (n + 1)
      else n
    in
    let n = low_known 0 in
    if n = 0 then unknown
    else
      let sum = Bits.add w a.one b.one in
      let mask_n = Bits.mask w (Int64.sub (Int64.shift_left 1L n) 1L) in
      {
        zero = Int64.logand mask_n (Bits.lognot w sum);
        one = Int64.logand mask_n sum;
      }
  | Cast { op = ZExt; src_ty = Types.Int sw; value; _ } ->
    let a = compute ~depth defs sw value in
    let high =
      Int64.logand (Bits.mask w Int64.minus_one)
        (Int64.lognot (Bits.mask w (Int64.sub (Int64.shift_left 1L sw) 1L)))
    in
    { zero = Int64.logor a.zero high; one = a.one }
  | Cast { op = Trunc; src_ty = Types.Int sw; value; _ } ->
    let a = compute ~depth defs sw value in
    { zero = Bits.mask w a.zero; one = Bits.mask w a.one }
  | Binop { op = URem; lhs = _; rhs = Const (CInt { value = c; _ }); _ }
    when Bits.is_power_of_two w c ->
    (* x urem 2^k keeps only the low k bits *)
    let high = Int64.logand (Bits.mask w Int64.minus_one) (Int64.lognot (Int64.sub c 1L)) in
    { zero = high; one = 0L }
  | Icmp _ ->
    (* i1 result: bit 0 unknown, others (none at width 1) *)
    unknown
  | Select { if_true; if_false; _ } -> join (recurse if_true) (recurse if_false)
  | Phi { incoming; _ } -> (
    match incoming with
    | [] -> unknown
    | (op0, _) :: rest ->
      List.fold_left (fun acc (op, _) -> join acc (recurse op)) (recurse op0) rest)
  | _ -> unknown

(** All bits of [op] at width [w] are known: returns the constant. *)
let as_constant defs w op =
  let k = compute defs w op in
  if (not (is_contradiction k)) && Int64.logor k.zero k.one = Bits.all_ones w then Some k.one
  else None

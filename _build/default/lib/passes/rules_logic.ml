(** Peephole rules over and / or / xor, including two known-bits-driven
    simplifications. *)

open Veriopt_ir
open Ast
open Rewrite

let w_of ty = Types.width ty

let and_zero =
  rule ~family:"logic" "and-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = And; ty; lhs; rhs; _ } when is_zero rhs || is_zero lhs ->
        Some (Value (const_int (w_of ty) 0L))
      | _ -> None)

let and_all_ones =
  rule ~family:"logic" "and-all-ones" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = And; lhs; rhs; _ } when is_all_ones rhs -> Some (Value lhs)
      | Binop { op = And; lhs; rhs; _ } when is_all_ones lhs -> Some (Value rhs)
      | _ -> None)

let and_self =
  rule ~family:"logic" "and-self" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = And; lhs; rhs; _ } when same_operand lhs rhs -> Some (Value lhs)
      | _ -> None)

let or_zero =
  rule ~family:"logic" "or-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Or; lhs; rhs; _ } when is_zero rhs -> Some (Value lhs)
      | Binop { op = Or; lhs; rhs; _ } when is_zero lhs -> Some (Value rhs)
      | _ -> None)

let or_all_ones =
  rule ~family:"logic" "or-all-ones" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Or; ty; lhs; rhs; _ } when is_all_ones rhs || is_all_ones lhs ->
        Some (Value (const_int (w_of ty) (Bits.all_ones (w_of ty))))
      | _ -> None)

let or_self =
  rule ~family:"logic" "or-self" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Or; lhs; rhs; _ } when same_operand lhs rhs -> Some (Value lhs)
      | _ -> None)

let xor_zero =
  rule ~family:"logic" "xor-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Xor; lhs; rhs; _ } when is_zero rhs -> Some (Value lhs)
      | Binop { op = Xor; lhs; rhs; _ } when is_zero lhs -> Some (Value rhs)
      | _ -> None)

let xor_self =
  rule ~family:"logic" "xor-self" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Xor; ty; lhs; rhs; _ } when same_operand lhs rhs ->
        Some (Value (const_int (w_of ty) 0L))
      | _ -> None)

(* (x op c1) op c2 -> x op (c1 op c2) for the same associative bit op *)
let assoc_const =
  rule ~family:"logic" "logic-assoc-const" (fun ctx ni ->
      match ni.instr with
      | Binop { op = (And | Or | Xor) as op; ty; lhs; rhs; _ } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = op'; lhs = x; rhs = inner; _ }), Some (w, c2) when op = op' -> (
          match cint inner with
          | Some (_, c1) when one_use ctx lhs ->
            let c =
              match op with
              | And -> Bits.logand w c1 c2
              | Or -> Bits.logor w c1 c2
              | Xor -> Bits.logxor w c1 c2
              | _ -> assert false
            in
            Some (Instr (Binop { op; flags = no_flags; ty; lhs = x; rhs = const_int w c }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* x and (x or y) -> x;  x or (x and y) -> x *)
let absorption =
  rule ~family:"logic" "absorption" (fun ctx ni ->
      let matches outer inner a b =
        match def_of ctx b with
        | Some (Binop { op; lhs = x; rhs = y; _ })
          when op = inner && (same_operand x a || same_operand y a) ->
          ignore outer;
          true
        | _ -> false
      in
      match ni.instr with
      | Binop { op = And; lhs; rhs; _ } when matches And Or lhs rhs -> Some (Value lhs)
      | Binop { op = And; lhs; rhs; _ } when matches And Or rhs lhs -> Some (Value rhs)
      | Binop { op = Or; lhs; rhs; _ } when matches Or And lhs rhs -> Some (Value lhs)
      | Binop { op = Or; lhs; rhs; _ } when matches Or And rhs lhs -> Some (Value rhs)
      | _ -> None)

(* and x, c -> x when the known zero bits of x cover ~c *)
let and_known_bits =
  rule ~family:"logic" "and-known-bits" (fun ctx ni ->
      match ni.instr with
      | Binop { op = And; ty; lhs; rhs; _ } -> (
        match cint rhs with
        | Some (w, c) ->
          let k = known ctx w lhs in
          if Int64.logand k.Known_bits.zero (Bits.lognot w c) = Bits.lognot w c then
            Some (Value lhs)
          else if Int64.logand (Int64.logor k.Known_bits.zero k.Known_bits.one) c = c then
            (* all bits selected by c are known: fold to constant *)
            Some (Value (const_int (Types.width ty) (Int64.logand k.Known_bits.one c)))
          else None
        | None -> None)
      | _ -> None)

(* or x, c -> c when the known one bits of x cover c's complement... more
   usefully: or x, c -> x when the bits of c are already known one in x *)
let or_known_bits =
  rule ~family:"logic" "or-known-bits" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Or; ty = _; lhs; rhs; _ } -> (
        match cint rhs with
        | Some (w, c) ->
          let k = known ctx w lhs in
          if Int64.logand k.Known_bits.one c = c then Some (Value lhs) else None
        | None -> None)
      | _ -> None)

(* xor (xor x, y), y -> x *)
let xor_xor_cancel =
  rule ~family:"logic" "xor-xor-cancel" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Xor; lhs; rhs; _ } -> (
        match def_of ctx lhs with
        | Some (Binop { op = Xor; lhs = x; rhs = y; _ }) when same_operand y rhs -> Some (Value x)
        | Some (Binop { op = Xor; lhs = x; rhs = y; _ }) when same_operand x rhs -> Some (Value y)
        | _ -> None)
      | _ -> None)

let rules =
  [
    and_zero;
    and_all_ones;
    and_self;
    or_zero;
    or_all_ones;
    or_self;
    xor_zero;
    xor_self;
    assoc_const;
    absorption;
    and_known_bits;
    or_known_bits;
    xor_xor_cancel;
  ]

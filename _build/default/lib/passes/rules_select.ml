(** Peephole rules over select. *)

open Veriopt_ir
open Ast
open Rewrite

let select_const_cond =
  rule ~family:"select" "select-const-cond" (fun _ctx ni ->
      match ni.instr with
      | Select { cond; if_true; if_false; _ } -> (
        match cint cond with
        | Some (1, 1L) -> Some (Value if_true)
        | Some (1, 0L) -> Some (Value if_false)
        | _ -> None)
      | _ -> None)

let select_same_arms =
  rule ~family:"select" "select-same-arms" (fun _ctx ni ->
      match ni.instr with
      | Select { if_true; if_false; _ } when same_operand if_true if_false -> Some (Value if_true)
      | _ -> None)

(* select c, true, false -> c; select c, false, true -> xor c, true *)
let select_bool_identity =
  rule ~family:"select" "select-bool-identity" (fun _ctx ni ->
      match ni.instr with
      | Select { ty = Types.Int 1; cond; if_true; if_false } ->
        if is_cint 1L if_true && is_cint 0L if_false then Some (Value cond)
        else if is_cint 0L if_true && is_cint 1L if_false then
          Some
            (Instr
               (Binop { op = Xor; flags = no_flags; ty = Types.i1; lhs = cond; rhs = const_bool true }))
        else None
      | _ -> None)

(* select c, 1, 0 at width w -> zext c; select c, 0, 1 -> zext (xor c) *)
let select_zext =
  rule ~family:"select" "select-to-zext" (fun _ctx ni ->
      match ni.instr with
      | Select { ty = Types.Int w; cond; if_true; if_false } when w > 1 ->
        if is_cint 1L if_true && is_cint 0L if_false then
          Some (Instr (Cast { op = ZExt; src_ty = Types.i1; value = cond; dst_ty = Types.Int w }))
        else None
      | _ -> None)

(* select (icmp eq x, c), c, x -> x  ("if x is c, produce c, else x") *)
let select_eq_collapse =
  rule ~family:"select" "select-eq-collapse" (fun ctx ni ->
      match ni.instr with
      | Select { cond; if_true; if_false; _ } -> (
        match def_of ctx cond with
        | Some (Icmp { pred = Eq; lhs = x; rhs = c; _ })
          when same_operand if_false x && same_operand if_true c && cint c <> None ->
          Some (Value if_false)
        | Some (Icmp { pred = Ne; lhs = x; rhs = c; _ })
          when same_operand if_true x && same_operand if_false c && cint c <> None ->
          Some (Value if_true)
        | _ -> None)
      | _ -> None)

(* select c, x, x op: canonicalize negated condition: select (xor c, true), a, b
   -> select c, b, a *)
let select_negated_cond =
  rule ~family:"select" "select-negated-cond" (fun ctx ni ->
      match ni.instr with
      | Select { ty; cond; if_true; if_false } -> (
        match def_of ctx cond with
        | Some (Binop { op = Xor; lhs = c; rhs; _ }) when is_cint 1L rhs && one_use ctx cond ->
          Some (Instr (Select { ty; cond = c; if_true = if_false; if_false = if_true }))
        | _ -> None)
      | _ -> None)

let rules =
  [
    select_const_cond;
    select_same_arms;
    select_bool_identity;
    select_zext;
    select_eq_collapse;
    select_negated_cond;
  ]

(** Peephole rules over add / sub / mul / div / rem — the "combining" and
    "algebraic simplification" families of classic peephole optimizers. *)

open Veriopt_ir
open Ast
open Rewrite

let w_of ty = Types.width ty

(* x + 0 -> x *)
let add_zero =
  rule ~family:"add" "add-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Add; lhs; rhs; _ } when is_zero rhs -> Some (Value lhs)
      | Binop { op = Add; lhs; rhs; _ } when is_zero lhs -> Some (Value rhs)
      | _ -> None)

(* x + x -> x << 1  (dropping nsw/nuw is always sound) *)
let add_self =
  rule ~family:"add" "add-self-to-shl" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Add; ty; lhs; rhs; _ } when same_operand lhs rhs ->
        Some (Instr (Binop { op = Shl; flags = no_flags; ty; lhs; rhs = const_int (w_of ty) 1L }))
      | _ -> None)

(* x - 0 -> x *)
let sub_zero =
  rule ~family:"sub" "sub-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Sub; lhs; rhs; _ } when is_zero rhs -> Some (Value lhs)
      | _ -> None)

(* x - x -> 0 *)
let sub_self =
  rule ~family:"sub" "sub-self" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Sub; ty; lhs; rhs; _ } when same_operand lhs rhs ->
        Some (Value (const_int (w_of ty) 0L))
      | _ -> None)

(* x - c -> x + (-c): LLVM's canonical form *)
let sub_const_to_add =
  rule ~family:"sub" "sub-const-to-add" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Sub; ty; lhs; rhs; _ } -> (
        match cint rhs with
        | Some (w, c) when c <> 0L ->
          Some
            (Instr
               (Binop { op = Add; flags = no_flags; ty; lhs; rhs = const_int w (Bits.neg w c) }))
        | _ -> None)
      | _ -> None)

(* (x + c1) + c2 -> x + (c1 + c2) *)
let add_add_const =
  rule ~family:"add" "add-add-const" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Add; ty; lhs; rhs; _ } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = Add; lhs = x; rhs = inner; _ }), Some (w, c2) -> (
          match cint inner with
          | Some (_, c1) when one_use ctx lhs ->
            Some
              (Instr
                 (Binop
                    { op = Add; flags = no_flags; ty; lhs = x; rhs = const_int w (Bits.add w c1 c2) }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* (x - y) + y -> x *)
let sub_add_cancel =
  rule ~family:"add" "sub-add-cancel" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Add; lhs; rhs; _ } -> (
        match def_of ctx lhs with
        | Some (Binop { op = Sub; lhs = x; rhs = y; _ }) when same_operand y rhs -> Some (Value x)
        | _ -> (
          match def_of ctx rhs with
          | Some (Binop { op = Sub; lhs = x; rhs = y; _ }) when same_operand y lhs ->
            Some (Value x)
          | _ -> None))
      | _ -> None)

(* (x + y) - y -> x *)
let add_sub_cancel =
  rule ~family:"sub" "add-sub-cancel" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Sub; lhs; rhs; _ } -> (
        match def_of ctx lhs with
        | Some (Binop { op = Add; lhs = x; rhs = y; _ }) when same_operand y rhs -> Some (Value x)
        | Some (Binop { op = Add; lhs = x; rhs = y; _ }) when same_operand x rhs -> Some (Value y)
        | _ -> None)
      | _ -> None)

(* x * 1 -> x;  x * 0 -> 0 *)
let mul_one =
  rule ~family:"mul" "mul-one" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Mul; lhs; rhs; _ } when is_cint 1L rhs -> Some (Value lhs)
      | Binop { op = Mul; lhs; rhs; _ } when is_cint 1L lhs -> Some (Value rhs)
      | _ -> None)

let mul_zero =
  rule ~family:"mul" "mul-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Mul; ty; lhs; rhs; _ } when is_zero rhs || is_zero lhs ->
        Some (Value (const_int (w_of ty) 0L))
      | _ -> None)

(* x * 2^k -> x << k *)
let mul_pow2 =
  rule ~family:"mul" "mul-pow2-to-shl" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Mul; ty; lhs; rhs; _ } -> (
        match cint rhs with
        | Some (w, c) when Bits.is_power_of_two w c && c <> 1L ->
          Some
            (Instr
               (Binop
                  {
                    op = Shl;
                    flags = no_flags;
                    ty;
                    lhs;
                    rhs = const_int w (Int64.of_int (Bits.log2 w c));
                  }))
        | _ -> None)
      | _ -> None)

(* x * -1 -> 0 - x *)
let mul_minus_one =
  rule ~family:"mul" "mul-minus-one" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Mul; ty; lhs; rhs; _ } when is_all_ones rhs ->
        Some
          (Instr
             (Binop { op = Sub; flags = no_flags; ty; lhs = const_int (w_of ty) 0L; rhs = lhs }))
      | _ -> None)

(* (x * c1) * c2 -> x * (c1 * c2) *)
let mul_mul_const =
  rule ~family:"mul" "mul-mul-const" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Mul; ty; lhs; rhs; _ } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = Mul; lhs = x; rhs = inner; _ }), Some (w, c2) -> (
          match cint inner with
          | Some (_, c1) when one_use ctx lhs ->
            Some
              (Instr
                 (Binop
                    { op = Mul; flags = no_flags; ty; lhs = x; rhs = const_int w (Bits.mul w c1 c2) }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* x udiv 1 / x sdiv 1 -> x *)
let div_one =
  rule ~family:"div" "div-one" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = UDiv | SDiv; lhs; rhs; _ } when is_cint 1L rhs -> Some (Value lhs)
      | _ -> None)

(* x udiv 2^k -> x lshr k *)
let udiv_pow2 =
  rule ~family:"div" "udiv-pow2-to-lshr" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = UDiv; ty; lhs; rhs; flags } -> (
        match cint rhs with
        | Some (w, c) when Bits.is_power_of_two w c ->
          Some
            (Instr
               (Binop
                  {
                    op = LShr;
                    flags = { no_flags with exact = flags.exact };
                    ty;
                    lhs;
                    rhs = const_int w (Int64.of_int (Bits.log2 w c));
                  }))
        | _ -> None)
      | _ -> None)

(* x urem 2^k -> x and (2^k - 1) *)
let urem_pow2 =
  rule ~family:"div" "urem-pow2-to-and" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = URem; ty; lhs; rhs; _ } -> (
        match cint rhs with
        | Some (w, c) when Bits.is_power_of_two w c ->
          Some
            (Instr
               (Binop
                  { op = And; flags = no_flags; ty; lhs; rhs = const_int w (Bits.sub w c 1L) }))
        | _ -> None)
      | _ -> None)

(* x udiv x -> 1: justified because x = 0 would be UB in the source *)
let div_self =
  rule ~family:"div" "div-self" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = UDiv | SDiv; ty; lhs; rhs; _ } when same_operand lhs rhs ->
        Some (Value (const_int (w_of ty) 1L))
      | _ -> None)

(* x urem x -> 0, same justification *)
let rem_self =
  rule ~family:"div" "rem-self" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = URem | SRem; ty; lhs; rhs; _ } when same_operand lhs rhs ->
        Some (Value (const_int (w_of ty) 0L))
      | _ -> None)

(* x sdiv -1 -> 0 - x: sdiv INT_MIN / -1 is UB in the source, so any result
   is acceptable there *)
let sdiv_minus_one =
  rule ~family:"div" "sdiv-minus-one" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = SDiv; ty; lhs; rhs; _ } when is_all_ones rhs ->
        Some
          (Instr
             (Binop { op = Sub; flags = no_flags; ty; lhs = const_int (w_of ty) 0L; rhs = lhs }))
      | _ -> None)

(* x urem 1 -> 0; x srem 1 -> 0 *)
let rem_one =
  rule ~family:"div" "rem-one" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = URem | SRem; ty; lhs = _; rhs; _ } when is_cint 1L rhs ->
        Some (Value (const_int (w_of ty) 0L))
      | _ -> None)

let rules =
  [
    add_zero;
    add_self;
    sub_zero;
    sub_self;
    sub_const_to_add;
    add_add_const;
    sub_add_cancel;
    add_sub_cancel;
    mul_one;
    mul_zero;
    mul_pow2;
    mul_minus_one;
    mul_mul_const;
    div_one;
    udiv_pow2;
    urem_pow2;
    div_self;
    rem_self;
    sdiv_minus_one;
    rem_one;
  ]

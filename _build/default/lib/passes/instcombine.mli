(** The instcombine pass: a fixpoint driver over the peephole rule catalog
    plus constant folding, block-local memory optimization and DCE.

    The trace of (rule, site) applications is the supervision signal for the
    surrogate model (the teacher action sequence of SFT). *)

type trace_entry = { rule : string; site : string }

val all_rules : Rewrite.rule list
(** Sound rewrite rules in application priority order. *)

val rule_names : string list

val find_rule : string -> Rewrite.rule option

val apply_rewrite : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.var -> Rewrite.rewrite -> Veriopt_ir.Ast.func
(** Apply a single rewrite at the instruction named by the site. *)

val find_applicable :
  ?rules:Rewrite.rule list ->
  Veriopt_ir.Ast.modul ->
  Veriopt_ir.Ast.func ->
  (Rewrite.rule * Veriopt_ir.Ast.named_instr * Rewrite.rewrite) option
(** First applicable (rule, site) in program order, or [None] at fixpoint. *)

val run :
  ?max_steps:int ->
  Veriopt_ir.Ast.modul ->
  Veriopt_ir.Ast.func ->
  Veriopt_ir.Ast.func * trace_entry list

(** Block-local memory optimization with a conservative alias discipline,
    plus the escape analysis shared with mem2reg. *)

open Veriopt_ir

type access = { root : Ast.operand; offset : int option }

val resolve : (Ast.var, Ast.instr) Hashtbl.t -> Ast.operand -> access
val is_alloca_root : (Ast.var, Ast.instr) Hashtbl.t -> Ast.operand -> bool
val escaped_allocas : Ast.func -> (Ast.var, Ast.instr) Hashtbl.t -> (Ast.var, unit) Hashtbl.t

type alias = Must | May | No

val alias_of :
  (Ast.var, Ast.instr) Hashtbl.t -> (Ast.var, unit) Hashtbl.t -> access -> int -> access -> int ->
  alias

type trace_entry = { rule : string; site : string }

val forward_loads : Ast.func -> Ast.func * trace_entry list
(** Store-to-load forwarding and redundant-load elimination. *)

val eliminate_dead_stores : Ast.func -> Ast.func * trace_entry list

(** Control-flow simplification: constant branch folding, identical-target
    collapsing, unreachable-block removal, single-predecessor merging,
    empty-block forwarding — iterated to fixpoint. *)

type trace_entry = { rule : string; site : string }

val fold_branches : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * trace_entry list
val remove_unreachable : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * trace_entry list
val merge_single_pred : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * trace_entry list
val forward_empty_blocks : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * trace_entry list
val run : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * trace_entry list

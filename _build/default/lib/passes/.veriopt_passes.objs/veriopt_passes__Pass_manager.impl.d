lib/passes/pass_manager.ml: Ast Dce Instcombine List Mem2reg Simplifycfg Veriopt_ir

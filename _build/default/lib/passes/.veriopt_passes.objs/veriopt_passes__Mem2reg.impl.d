lib/passes/mem2reg.ml: Ast Builder Cfg Hashtbl List Option Rules_mem Types Veriopt_ir

lib/passes/dce.ml: Ast Builder Hashtbl List Option Veriopt_ir

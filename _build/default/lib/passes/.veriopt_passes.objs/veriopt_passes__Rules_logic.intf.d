lib/passes/rules_logic.mli: Rewrite

lib/passes/fold.mli: Veriopt_ir

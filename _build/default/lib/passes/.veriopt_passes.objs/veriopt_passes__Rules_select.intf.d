lib/passes/rules_select.mli: Rewrite

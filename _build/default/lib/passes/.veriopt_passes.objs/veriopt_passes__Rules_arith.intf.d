lib/passes/rules_arith.mli: Rewrite

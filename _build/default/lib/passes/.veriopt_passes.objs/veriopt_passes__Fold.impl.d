lib/passes/fold.ml: Ast Bits Option Types Veriopt_ir

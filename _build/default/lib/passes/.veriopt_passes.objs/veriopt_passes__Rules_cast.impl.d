lib/passes/rules_cast.ml: Ast Bits Known_bits Rewrite Types Veriopt_ir

lib/passes/rewrite.mli: Ast Hashtbl Known_bits Veriopt_ir

lib/passes/rules_cast.mli: Rewrite

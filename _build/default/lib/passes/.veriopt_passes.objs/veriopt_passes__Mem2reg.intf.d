lib/passes/mem2reg.mli: Veriopt_ir

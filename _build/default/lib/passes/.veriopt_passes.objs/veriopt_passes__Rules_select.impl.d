lib/passes/rules_select.ml: Ast Rewrite Types Veriopt_ir

lib/passes/rewrite.ml: Ast Bits Builder Hashtbl Known_bits Veriopt_ir

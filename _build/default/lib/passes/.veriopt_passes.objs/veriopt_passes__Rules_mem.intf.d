lib/passes/rules_mem.mli: Ast Hashtbl Veriopt_ir

lib/passes/rules_shift.ml: Ast Bits Int64 Known_bits Rewrite Types Veriopt_ir

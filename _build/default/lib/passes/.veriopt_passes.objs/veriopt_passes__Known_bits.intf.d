lib/passes/known_bits.mli: Hashtbl Veriopt_ir

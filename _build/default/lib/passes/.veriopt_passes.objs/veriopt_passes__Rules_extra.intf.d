lib/passes/rules_extra.mli: Rewrite

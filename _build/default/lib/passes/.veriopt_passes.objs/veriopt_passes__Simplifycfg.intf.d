lib/passes/simplifycfg.mli: Veriopt_ir

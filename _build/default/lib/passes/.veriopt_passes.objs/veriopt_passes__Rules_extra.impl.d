lib/passes/rules_extra.ml: Ast Bits Int64 Known_bits Rewrite Types Veriopt_ir

lib/passes/instcombine.ml: Ast Builder Dce Fold List Option Rewrite Rules_arith Rules_cast Rules_extra Rules_icmp Rules_logic Rules_mem Rules_narrow Rules_phi Rules_select Rules_shift Veriopt_ir

lib/passes/instcombine.mli: Rewrite Veriopt_ir

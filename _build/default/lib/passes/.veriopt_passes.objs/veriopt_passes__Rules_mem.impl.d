lib/passes/rules_mem.ml: Ast Bits Builder Fmt Hashtbl Int64 List Types Veriopt_ir

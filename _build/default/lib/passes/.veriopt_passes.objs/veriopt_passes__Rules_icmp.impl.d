lib/passes/rules_icmp.ml: Ast Bits Int64 Known_bits Rewrite Types Veriopt_ir

lib/passes/rules_phi.mli: Rewrite

lib/passes/rules_logic.ml: Ast Bits Int64 Known_bits Rewrite Types Veriopt_ir

lib/passes/rules_arith.ml: Ast Bits Int64 Rewrite Types Veriopt_ir

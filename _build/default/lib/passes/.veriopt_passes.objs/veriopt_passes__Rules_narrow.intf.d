lib/passes/rules_narrow.mli: Rewrite

lib/passes/rules_icmp.mli: Rewrite

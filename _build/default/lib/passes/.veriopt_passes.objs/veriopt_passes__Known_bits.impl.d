lib/passes/known_bits.ml: Ast Bits Hashtbl Int64 List Types Veriopt_ir

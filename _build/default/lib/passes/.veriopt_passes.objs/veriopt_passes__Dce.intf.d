lib/passes/dce.mli: Veriopt_ir

lib/passes/pass_manager.mli: Veriopt_ir

lib/passes/rules_phi.ml: Ast List Rewrite Veriopt_ir

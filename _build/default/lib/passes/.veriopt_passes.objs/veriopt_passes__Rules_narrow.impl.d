lib/passes/rules_narrow.ml: Ast Bits Builder Int64 Rewrite Types Veriopt_ir

lib/passes/simplifycfg.ml: Ast Builder Cfg List Types Veriopt_ir

lib/passes/rules_shift.mli: Rewrite

(** Peephole rules over phi nodes. *)

open Veriopt_ir
open Ast
open Rewrite

(* phi with a single incoming value *)
let phi_single =
  rule ~family:"phi" "phi-single" (fun _ctx ni ->
      match ni.instr with
      | Phi { incoming = [ (op, _) ]; _ } -> Some (Value op)
      | _ -> None)

(* phi whose incomings are all the same value (or references to itself) *)
let phi_same =
  rule ~family:"phi" "phi-same" (fun _ctx ni ->
      match ni.instr with
      | Phi { incoming = (op0, _) :: rest; _ } ->
        let self v = match ni.name with Some n -> v = Var n | None -> false in
        let all_same =
          List.for_all (fun (op, _) -> same_operand op op0 || self op) rest && not (self op0)
        in
        if all_same && rest <> [] then Some (Value op0) else None
      | _ -> None)

let rules = [ phi_single; phi_same ]

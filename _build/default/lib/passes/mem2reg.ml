(** Promotion of allocas to SSA registers (mem2reg).

    Uses the lazy value-numbering construction of Braun et al. ("Simple and
    Efficient Construction of Static Single Assignment Form"): the value of a
    promoted alloca at a block's entry is resolved recursively through
    predecessors, with phi placeholders breaking cycles.  Trivial phis the
    construction leaves behind are cleaned up by instcombine's phi rules.

    An alloca is promotable when it holds a single integer, never escapes,
    and every use is a full-width direct load or store. *)

open Veriopt_ir
open Ast

type trace_entry = { rule : string; site : string }

let promotable_allocas (f : func) : (var * Types.t) list =
  let defs = Builder.def_map f in
  let escaped = Rules_mem.escaped_allocas f defs in
  let candidates = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun { name; instr } ->
          match (name, instr) with
          | Some n, Alloca { ty = Types.Int w; _ } when not (Hashtbl.mem escaped n) ->
            Hashtbl.replace candidates n (Types.Int w)
          | _ -> ())
        b.instrs)
    f.blocks;
  (* reject any candidate with a non-load/store use or width mismatch *)
  let reject n = Hashtbl.remove candidates n in
  List.iter
    (fun b ->
      List.iter
        (fun { instr; _ } ->
          let check_op op =
            match op with
            | Var v when Hashtbl.mem candidates v -> (
              (* appearing anywhere but as the ptr of a matching load/store
                 disqualifies *)
              match instr with
              | Load { ty; ptr = Var p; _ } when p = v -> (
                match Hashtbl.find_opt candidates v with
                | Some ety when Types.equal ety ty -> ()
                | _ -> reject v)
              | Store { ty; ptr = Var p; value; _ } when p = v && value <> Var v -> (
                match Hashtbl.find_opt candidates v with
                | Some ety when Types.equal ety ty -> ()
                | _ -> reject v)
              | _ -> reject v)
            | _ -> ()
          in
          List.iter check_op (operands_of_instr instr))
        b.instrs;
      List.iter
        (fun op -> match op with Var v -> reject v | _ -> ())
        (operands_of_terminator b.term))
    f.blocks;
  Hashtbl.fold (fun n ty acc -> (n, ty) :: acc) candidates [] |> List.sort compare

(** Promote promotable allocas (at most [limit]).  Returns the rewritten
    function and a trace naming each promoted slot. *)
let run ?(limit = max_int) (f : func) : func * trace_entry list =
  let allocas =
    let all = promotable_allocas f in
    List.filteri (fun i _ -> i < limit) all
  in
  if allocas = [] then (f, [])
  else begin
    let cfg = Cfg.of_func f in
    let names = Builder.names_of_func f in
    let entry = (entry_block f).label in
    let is_store_to a = function
      | Store { ptr = Var p; value; _ } when p = a -> Some value
      | _ -> None
    in
    let ty_of a = List.assoc a allocas in
    (* Lazy per-(alloca, block) entry values with phi placeholders. *)
    let entry_memo : (var * label, operand) Hashtbl.t = Hashtbl.create 32 in
    let phis_to_insert : (label, named_instr ref list ref) Hashtbl.t = Hashtbl.create 8 in
    let rec entry_value (a : var) (b : label) : operand =
      match Hashtbl.find_opt entry_memo (a, b) with
      | Some v -> v
      | None -> (
        if b = entry then Const (CUndef (ty_of a))
        else
          match List.sort_uniq compare (Cfg.predecessors cfg b) with
          | [] -> Const (CUndef (ty_of a))
          | [ p ] ->
            let v = exit_value a p in
            Hashtbl.replace entry_memo (a, b) v;
            v
          | preds ->
            let phi_name = Builder.fresh names (a ^ ".") in
            Hashtbl.replace entry_memo (a, b) (Var phi_name);
            let cell =
              ref { name = Some phi_name; instr = Phi { ty = ty_of a; incoming = [] } }
            in
            let bucket =
              match Hashtbl.find_opt phis_to_insert b with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.replace phis_to_insert b l;
                l
            in
            bucket := cell :: !bucket;
            let incoming = List.map (fun p -> (exit_value a p, p)) preds in
            cell := { !cell with instr = Phi { ty = ty_of a; incoming } };
            Var phi_name)
    and exit_value (a : var) (b : label) : operand =
      if not (Cfg.is_reachable cfg b) then Const (CUndef (ty_of a))
      else
      let block = Cfg.block_exn cfg b in
      let last_store =
        List.fold_left
          (fun acc ni -> match is_store_to a ni.instr with Some v -> Some v | None -> acc)
          None block.instrs
      in
      match last_store with Some v -> v | None -> entry_value a b
    in
    (* Rewrite pass: drop allocas/stores, replace loads, insert phis. *)
    let promoted = List.map fst allocas in
    let is_promoted v = List.mem v promoted in
    let substitutions = ref [] in
    let blocks =
      List.map
        (fun b ->
          let current : (var, operand) Hashtbl.t = Hashtbl.create 4 in
          let instrs =
            List.filter_map
              (fun ni ->
                match ni.instr with
                | Alloca _ when Option.fold ~none:false ~some:is_promoted ni.name -> None
                | Store { ptr = Var p; value; _ } when is_promoted p ->
                  Hashtbl.replace current p value;
                  None
                | Load { ptr = Var p; _ } when is_promoted p ->
                  let v =
                    match Hashtbl.find_opt current p with
                    | Some v -> v
                    | None -> entry_value p b.label
                  in
                  substitutions := (Option.get ni.name, v) :: !substitutions;
                  None
                | _ -> Some ni)
              b.instrs
          in
          { b with instrs })
        f.blocks
    in
    (* Insert the phis created during resolution. *)
    let blocks =
      List.map
        (fun b ->
          match Hashtbl.find_opt phis_to_insert b.label with
          | Some cells -> { b with instrs = List.rev_map (fun c -> !c) !cells @ b.instrs }
          | None -> b)
        blocks
    in
    let f = { f with blocks } in
    (* Loads may be referenced by other instructions, phis, and stored
       values; substitute them all.  A load's value may itself be another
       replaced load, so iterate to a fixpoint over the substitution map. *)
    let subst_map = Hashtbl.create 16 in
    List.iter (fun (n, v) -> Hashtbl.replace subst_map n v) !substitutions;
    let rec resolve_op op =
      match op with
      | Var v -> (
        match Hashtbl.find_opt subst_map v with
        | Some v' when v' <> op -> resolve_op v'
        | _ -> op)
      | _ -> op
    in
    let f =
      List.fold_left
        (fun acc (n, _) -> Builder.substitute_operand acc ~from:n ~to_:(resolve_op (Var n)))
        f !substitutions
    in
    let trace = List.map (fun (a, _) -> { rule = "mem2reg"; site = a }) allocas in
    (f, trace)
  end

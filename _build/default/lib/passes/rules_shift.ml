(** Peephole rules over shl / lshr / ashr. *)

open Veriopt_ir
open Ast
open Rewrite

let shift_zero =
  rule ~family:"shift" "shift-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Shl | LShr | AShr; lhs; rhs; _ } when is_zero rhs -> Some (Value lhs)
      | _ -> None)

let shift_of_zero =
  rule ~family:"shift" "shift-of-zero" (fun _ctx ni ->
      match ni.instr with
      | Binop { op = Shl | LShr | AShr; ty; lhs; rhs = _; _ } when is_zero lhs ->
        Some (Value (const_int (Types.width ty) 0L))
      | _ -> None)

(* (x shl c) lshr c -> x and (all_ones >> c) *)
let shl_lshr_mask =
  rule ~family:"shift" "shl-lshr-to-and" (fun ctx ni ->
      match ni.instr with
      | Binop { op = LShr; ty; lhs; rhs; _ } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = Shl; lhs = x; rhs = inner; flags; _ }), Some (w, c)
          when (not (Bits.shift_amount_poison w c)) && one_use ctx lhs && not flags.nuw -> (
          match cint inner with
          | Some (_, c') when c' = c ->
            Some
              (Instr
                 (Binop
                    {
                      op = And;
                      flags = no_flags;
                      ty;
                      lhs = x;
                      rhs = const_int w (Bits.lshr w (Bits.all_ones w) c);
                    }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* (x shl nuw c) lshr c -> x: no bits were lost *)
let shl_nuw_lshr_cancel =
  rule ~family:"shift" "shl-nuw-lshr-cancel" (fun ctx ni ->
      match ni.instr with
      | Binop { op = LShr; lhs; rhs; _ } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = Shl; lhs = x; rhs = inner; flags; _ }), Some (_, c) when flags.nuw -> (
          match cint inner with Some (_, c') when c' = c -> Some (Value x) | _ -> None)
        | _ -> None)
      | _ -> None)

(* (x shl c1) shl c2 -> x shl (c1+c2), or 0 when the total exceeds the width *)
let shl_shl =
  rule ~family:"shift" "shl-shl" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Shl; ty; lhs; rhs; _ } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = Shl; lhs = x; rhs = inner; _ }), Some (w, c2)
          when not (Bits.shift_amount_poison w c2) -> (
          match cint inner with
          | Some (_, c1) when (not (Bits.shift_amount_poison w c1)) && one_use ctx lhs ->
            let total = Int64.add c1 c2 in
            if Bits.shift_amount_poison w total then Some (Value (const_int w 0L))
            else
              Some
                (Instr (Binop { op = Shl; flags = no_flags; ty; lhs = x; rhs = const_int w total }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* (x lshr c1) lshr c2 -> x lshr (c1+c2), or 0 past the width *)
let lshr_lshr =
  rule ~family:"shift" "lshr-lshr" (fun ctx ni ->
      match ni.instr with
      | Binop { op = LShr; ty; lhs; rhs; _ } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = LShr; lhs = x; rhs = inner; _ }), Some (w, c2)
          when not (Bits.shift_amount_poison w c2) -> (
          match cint inner with
          | Some (_, c1) when (not (Bits.shift_amount_poison w c1)) && one_use ctx lhs ->
            let total = Int64.add c1 c2 in
            if Bits.shift_amount_poison w total then Some (Value (const_int w 0L))
            else
              Some
                (Instr
                   (Binop { op = LShr; flags = no_flags; ty; lhs = x; rhs = const_int w total }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* lshr of a value whose high bit is known zero is also an ashr and vice
   versa; canonicalize ashr -> lshr when the sign bit is known zero *)
let ashr_known_nonneg =
  rule ~family:"shift" "ashr-nonneg-to-lshr" (fun ctx ni ->
      match ni.instr with
      | Binop { op = AShr; ty; lhs; rhs; flags } ->
        let w = Types.width ty in
        let k = known ctx w lhs in
        if Bits.bit w k.Known_bits.zero (w - 1) then
          Some (Instr (Binop { op = LShr; flags; ty; lhs; rhs }))
        else None
      | _ -> None)

let rules =
  [ shift_zero; shift_of_zero; shl_nuw_lshr_cancel; shl_lshr_mask; shl_shl; lshr_lshr; ashr_known_nonneg ]

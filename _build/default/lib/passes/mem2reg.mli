(** Promotion of allocas to SSA registers, via the lazy value-numbering SSA
    construction of Braun et al. *)

type trace_entry = { rule : string; site : string }

val promotable_allocas : Veriopt_ir.Ast.func -> (Veriopt_ir.Ast.var * Veriopt_ir.Types.t) list
(** Integer allocas that never escape and whose every use is a full-width
    direct load or store. *)

val run :
  ?limit:int -> Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * trace_entry list
(** Promote (at most [limit]) promotable allocas, inserting phis as needed. *)

(** Peephole rules over casts. *)

open Veriopt_ir
open Ast
open Rewrite

(* zext (zext x)) -> zext x; sext (sext x) -> sext x *)
let ext_of_ext =
  rule ~family:"cast" "ext-of-ext" (fun ctx ni ->
      match ni.instr with
      | Cast { op = (ZExt | SExt) as op; src_ty = _; value; dst_ty } -> (
        match def_of ctx value with
        | Some (Cast { op = op'; src_ty = inner_src; value = x; _ })
          when op = op' && one_use ctx value ->
          Some (Instr (Cast { op; src_ty = inner_src; value = x; dst_ty }))
        | Some (Cast { op = ZExt; src_ty = inner_src; value = x; _ })
          when op = SExt && one_use ctx value ->
          (* sext (zext x) -> zext x: the zext result is non-negative *)
          Some (Instr (Cast { op = ZExt; src_ty = inner_src; value = x; dst_ty }))
        | _ -> None)
      | _ -> None)

(* trunc (trunc x) -> trunc x *)
let trunc_of_trunc =
  rule ~family:"cast" "trunc-of-trunc" (fun ctx ni ->
      match ni.instr with
      | Cast { op = Trunc; src_ty = _; value; dst_ty } -> (
        match def_of ctx value with
        | Some (Cast { op = Trunc; src_ty = inner_src; value = x; _ }) when one_use ctx value ->
          Some (Instr (Cast { op = Trunc; src_ty = inner_src; value = x; dst_ty }))
        | _ -> None)
      | _ -> None)

(* trunc (zext/sext x) -> x | zext x | sext x | trunc x, by width *)
let trunc_of_ext =
  rule ~family:"cast" "trunc-of-ext" (fun ctx ni ->
      match ni.instr with
      | Cast { op = Trunc; src_ty = _; value; dst_ty = Types.Int dw } -> (
        match def_of ctx value with
        | Some (Cast { op = (ZExt | SExt) as inner_op; src_ty = Types.Int sw; value = x; _ })
          when one_use ctx value ->
          if dw = sw then Some (Value x)
          else if dw < sw then
            Some (Instr (Cast { op = Trunc; src_ty = Types.Int sw; value = x; dst_ty = Types.Int dw }))
          else
            Some
              (Instr (Cast { op = inner_op; src_ty = Types.Int sw; value = x; dst_ty = Types.Int dw }))
        | _ -> None)
      | _ -> None)

(* zext i1 (icmp ...) stays; but zext of a value whose width already matches
   constant-folds via Fold.  A useful extra: sext x when x's sign bit is
   known zero -> zext x (canonical, cheaper on most targets). *)
let sext_nonneg_to_zext =
  rule ~family:"cast" "sext-nonneg-to-zext" (fun ctx ni ->
      match ni.instr with
      | Cast { op = SExt; src_ty = Types.Int sw; value; dst_ty } ->
        let k = known ctx sw value in
        if Bits.bit sw k.Known_bits.zero (sw - 1) then
          Some (Instr (Cast { op = ZExt; src_ty = Types.Int sw; value; dst_ty }))
        else None
      | _ -> None)

let rules = [ ext_of_ext; trunc_of_trunc; trunc_of_ext; sext_nonneg_to_zext ]

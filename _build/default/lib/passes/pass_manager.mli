(** Pass composition. *)

type trace_entry = { pass : string; rule : string; site : string }

val instcombine : Veriopt_ir.Ast.modul -> Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * trace_entry list
(** The paper's reference pipeline: the peephole catalog, block-local memory
    optimization and DCE, run to fixpoint.  The trace is the supervision
    signal for SFT. *)

val aggressive :
  ?max_iters:int ->
  Veriopt_ir.Ast.modul ->
  Veriopt_ir.Ast.func ->
  Veriopt_ir.Ast.func * trace_entry list
(** instcombine + mem2reg + simplifycfg iterated: the full space of sound
    transformations available to the model (including its emergent ones). *)

(** Compile-time evaluation of instructions with constant operands.  Folds
    only to well-defined constants: UB and poison cases are left in place. *)

val fold_binop :
  Veriopt_ir.Ast.binop -> Veriopt_ir.Ast.flags -> int -> int64 -> int64 -> int64 option

val fold_instr : Veriopt_ir.Ast.instr -> Veriopt_ir.Ast.operand option

(** A computeKnownBits-style forward bit analysis: for an SSA value, masks of
    bits proven 0 and proven 1 on every execution.  Depth-limited recursion
    through defining instructions. *)

type t = { zero : int64; one : int64 }

val unknown : t
val exact : int -> int64 -> t
val is_contradiction : t -> bool
val known_mask : t -> int64

val compute : ?depth:int -> (Veriopt_ir.Ast.var, Veriopt_ir.Ast.instr) Hashtbl.t -> int -> Veriopt_ir.Ast.operand -> t

val as_constant : (Veriopt_ir.Ast.var, Veriopt_ir.Ast.instr) Hashtbl.t -> int -> Veriopt_ir.Ast.operand -> int64 option
(** When every bit is known, the constant value. *)

(** Block-local memory optimizations: store-to-load forwarding, redundant
    load elimination, and dead store elimination.

    The alias discipline is deliberately conservative: two accesses
    must-alias when they share the same pointer SSA root and constant offset;
    they no-alias when rooted at distinct allocas, or at the same root with
    disjoint constant ranges; anything else may-alias and blocks the
    optimization.  Calls block accesses to escaped allocas and to all
    non-alloca memory. *)

open Veriopt_ir
open Ast

type access = { root : operand; offset : int option (* None: unknown *) }

(* Follow gep chains with constant indices back to the pointer root. *)
let rec resolve (defs : (var, instr) Hashtbl.t) (p : operand) : access =
  match p with
  | Var v -> (
    match Hashtbl.find_opt defs v with
    | Some (Gep { base_ty; ptr; indices; _ }) -> (
      let base = resolve defs ptr in
      match base.offset with
      | None -> { root = base.root; offset = None }
      | Some base_off -> (
        let rec walk ty indices acc =
          match indices with
          | [] -> Some acc
          | (_, Const (CInt { width; value })) :: rest -> (
            let idx = Int64.to_int (Bits.to_signed width value) in
            match ty with
            | Types.Struct ts ->
              if idx < 0 || idx >= List.length ts then None
              else walk (List.nth ts idx) rest (acc + Types.struct_field_offset ts idx)
            | Types.Array (_, elt) -> walk elt rest (acc + (idx * Types.size_in_bytes elt))
            | t -> walk t rest (acc + (idx * Types.size_in_bytes t))
          )
          | _ -> None
        in
        (* first index scales by the whole type *)
        match indices with
        | [] -> { root = base.root; offset = Some base_off }
        | (_, Const (CInt { width; value })) :: rest -> (
          let idx = Int64.to_int (Bits.to_signed width value) in
          let first = idx * Types.size_in_bytes base_ty in
          match walk base_ty rest (base_off + first) with
          | Some off -> { root = base.root; offset = Some off }
          | None -> { root = base.root; offset = None })
        | _ -> { root = base.root; offset = None }))
    | Some (Cast { op = Bitcast; value; _ }) -> resolve defs value
    | _ -> { root = p; offset = Some 0 })
  | _ -> { root = p; offset = Some 0 }

let is_alloca_root defs = function
  | Var v -> ( match Hashtbl.find_opt defs v with Some (Alloca _) -> true | _ -> false)
  | _ -> false

(* An alloca escapes if its address is stored, passed to a call, or cast. *)
let escaped_allocas (f : func) (defs : (var, instr) Hashtbl.t) : (var, unit) Hashtbl.t =
  let escaped = Hashtbl.create 8 in
  let root_var op = match (resolve defs op).root with Var v -> Some v | _ -> None in
  let mark op =
    match root_var op with
    | Some v when is_alloca_root defs (Var v) -> Hashtbl.replace escaped v ()
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun { instr; _ } ->
          match instr with
          | Store { value; _ } -> mark value (* address stored to memory *)
          | Call { args; _ } -> List.iter (fun (_, a) -> mark a) args
          | Cast { op = PtrToInt; value; _ } -> mark value
          | _ -> ())
        b.instrs)
    f.blocks;
  escaped

type alias = Must | May | No

let alias_of defs escaped (a : access) wa (b : access) wb : alias =
  let private_alloca = function
    | Var v -> is_alloca_root defs (Var v) && not (Hashtbl.mem escaped v)
    | _ -> false
  in
  let distinct_allocas =
    match (a.root, b.root) with
    | Var x, Var y ->
      x <> y && is_alloca_root defs (Var x) && is_alloca_root defs (Var y)
    | _ -> false
  in
  if distinct_allocas then No
  else if a.root = b.root then
    match (a.offset, b.offset) with
    | Some oa, Some ob ->
      if oa = ob && wa = wb then Must
      else if oa + ((wa + 7) / 8) <= ob || ob + ((wb + 7) / 8) <= oa then No
      else May
    | _ -> May
  else if
    (* a non-escaped alloca cannot be reached through a parameter, a global,
       or any other pointer root *)
    private_alloca a.root || private_alloca b.root
  then No
  else May

let width_of_ty = function Types.Int w -> Some w | Types.Ptr -> Some 64 | _ -> None

type trace_entry = { rule : string; site : string }

(* Store-to-load forwarding and redundant-load elimination within a block. *)
let forward_loads (f : func) : func * trace_entry list =
  let defs = Builder.def_map f in
  let escaped = escaped_allocas f defs in
  let trace = ref [] in
  let f_ref = ref f in
  let changed = ref true in
  while !changed do
    changed := false;
    let defs = Builder.def_map !f_ref in
    let blocks = (!f_ref).blocks in
    (* find the first forwardable load *)
    let found = ref None in
    List.iter
      (fun b ->
        if !found = None then
          List.iteri
            (fun i ni ->
              if !found = None then
                match (ni.name, ni.instr) with
                | Some lname, Load { ty; ptr; _ } -> (
                  match width_of_ty ty with
                  | None -> ()
                  | Some w -> (
                    let acc = resolve defs ptr in
                    let alloca_private =
                      match acc.root with
                      | Var v -> is_alloca_root defs (Var v) && not (Hashtbl.mem escaped v)
                      | _ -> false
                    in
                    (* scan backwards *)
                    let rec scan j =
                      if j < 0 then None
                      else
                        let prev = List.nth b.instrs j in
                        match prev.instr with
                        | Store { ty = sty; value; ptr = sptr; _ } -> (
                          match width_of_ty sty with
                          | None -> None
                          | Some sw -> (
                            let sacc = resolve defs sptr in
                            match alias_of defs escaped acc w sacc sw with
                            | Must -> Some (`Forward value)
                            | No -> scan (j - 1)
                            | May -> None))
                        | Load { ty = lty; ptr = lptr; _ } -> (
                          match (prev.name, width_of_ty lty) with
                          | Some pname, Some lw
                            when alias_of defs escaped acc w (resolve defs lptr) lw = Must ->
                            Some (`Reuse pname)
                          | _ -> scan (j - 1))
                        | Call _ -> if alloca_private then scan (j - 1) else None
                        | _ -> scan (j - 1)
                    in
                    match scan (i - 1) with
                    | Some (`Forward value) -> found := Some (lname, value, "store-to-load-forward")
                    | Some (`Reuse pname) -> found := Some (lname, Var pname, "redundant-load")
                    | None -> ()))
                | _ -> ())
            b.instrs)
      blocks;
    match !found with
    | Some (lname, value, rule) ->
      f_ref := Builder.substitute_operand !f_ref ~from:lname ~to_:value;
      f_ref := Builder.replace_instr !f_ref ~name:lname ~with_:[];
      trace := { rule; site = lname } :: !trace;
      changed := true
    | None -> ()
  done;
  (!f_ref, List.rev !trace)

(* Dead-store elimination: a store overwritten in the same block before any
   potentially-reading operation. *)
let eliminate_dead_stores (f : func) : func * trace_entry list =
  let trace = ref [] in
  let f_ref = ref f in
  let changed = ref true in
  while !changed do
    changed := false;
    let defs = Builder.def_map !f_ref in
    let escaped = escaped_allocas !f_ref defs in
    let found = ref None in
    List.iter
      (fun b ->
        if !found = None then
          List.iteri
            (fun i ni ->
              if !found = None then
                match ni.instr with
                | Store { ty; ptr; _ } -> (
                  match width_of_ty ty with
                  | None -> ()
                  | Some w -> (
                    let acc = resolve defs ptr in
                    let alloca_private =
                      match acc.root with
                      | Var v -> is_alloca_root defs (Var v) && not (Hashtbl.mem escaped v)
                      | _ -> false
                    in
                    let n = List.length b.instrs in
                    let rec scan j =
                      if j >= n then false
                      else
                        let next = List.nth b.instrs j in
                        match next.instr with
                        | Store { ty = sty; ptr = sptr; _ } -> (
                          match width_of_ty sty with
                          | None -> false
                          | Some sw -> (
                            match alias_of defs escaped acc w (resolve defs sptr) sw with
                            | Must -> true (* overwritten: dead *)
                            | No -> scan (j + 1)
                            | May -> false))
                        | Load { ty = lty; ptr = lptr; _ } -> (
                          match width_of_ty lty with
                          | None -> false
                          | Some lw -> (
                            match alias_of defs escaped acc w (resolve defs lptr) lw with
                            | No -> scan (j + 1)
                            | Must | May -> false))
                        | Call _ -> if alloca_private then scan (j + 1) else false
                        | _ -> scan (j + 1)
                    in
                    if scan (i + 1) then found := Some (b.label, i)))
                | _ -> ())
            b.instrs)
      (!f_ref).blocks;
    match !found with
    | Some (label, index) ->
      f_ref := Builder.remove_instr_at !f_ref ~block:label ~index;
      trace := { rule = "dead-store"; site = Fmt.str "%s:%d" label index } :: !trace;
      changed := true
    | None -> ()
  done;
  (!f_ref, List.rev !trace)

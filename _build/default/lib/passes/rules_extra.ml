(** A second tier of peephole rules: negation/complement identities,
    known-bits-strengthened division, and the zext/icmp cleanups that clang
    -O0 code is full of. *)

open Veriopt_ir
open Ast
open Rewrite

let w_of ty = Types.width ty

(* 0 - (0 - x) -> x *)
let neg_of_neg =
  rule ~family:"sub" "neg-of-neg" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Sub; lhs; rhs; _ } when is_zero lhs -> (
        match def_of ctx rhs with
        | Some (Binop { op = Sub; lhs = z; rhs = x; _ }) when is_zero z -> Some (Value x)
        | _ -> None)
      | _ -> None)

(* helper: is [op] the bitwise complement of [x]? *)
let is_not_of ctx op x =
  match def_of ctx op with
  | Some (Binop { op = Xor; lhs; rhs; _ }) ->
    (same_operand lhs x && is_all_ones rhs) || (same_operand rhs x && is_all_ones lhs)
  | _ -> false

(* x + ~x -> -1 *)
let add_not_self =
  rule ~family:"add" "add-not-self" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Add; ty; lhs; rhs; _ }
        when is_not_of ctx rhs lhs || is_not_of ctx lhs rhs ->
        Some (Value (const_int (w_of ty) (Bits.all_ones (w_of ty))))
      | _ -> None)

(* x & ~x -> 0 *)
let and_not_self =
  rule ~family:"logic" "and-not-self" (fun ctx ni ->
      match ni.instr with
      | Binop { op = And; ty; lhs; rhs; _ }
        when is_not_of ctx rhs lhs || is_not_of ctx lhs rhs ->
        Some (Value (const_int (w_of ty) 0L))
      | _ -> None)

(* x | ~x -> -1 *)
let or_not_self =
  rule ~family:"logic" "or-not-self" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Or; ty; lhs; rhs; _ }
        when is_not_of ctx rhs lhs || is_not_of ctx lhs rhs ->
        Some (Value (const_int (w_of ty) (Bits.all_ones (w_of ty))))
      | _ -> None)

(* icmp ne (zext i1 %c to iN), 0 -> %c ; the eq form negates.  This is the
   `%tobool` pattern clang emits for every condition built from a stored
   comparison. *)
let icmp_zext_bool =
  rule ~family:"icmp" "icmp-zext-bool" (fun ctx ni ->
      match ni.instr with
      (* the narrowed form the zext-const rule leaves behind *)
      | Icmp { pred = Ne; ty = Types.Int 1; lhs; rhs } when is_zero rhs -> Some (Value lhs)
      | Icmp { pred = Eq; ty = Types.Int 1; lhs; rhs } when is_zero rhs ->
        Some
          (Instr
             (Binop { op = Xor; flags = no_flags; ty = Types.i1; lhs; rhs = const_bool true }))
      | Icmp { pred = (Ne | Eq) as pred; lhs; rhs; _ } when is_zero rhs -> (
        match def_of ctx lhs with
        | Some (Cast { op = ZExt; src_ty = Types.Int 1; value; _ }) ->
          if pred = Ne then Some (Value value)
          else
            Some
              (Instr
                 (Binop
                    { op = Xor; flags = no_flags; ty = Types.i1; lhs = value; rhs = const_bool true }))
        | _ -> None)
      | _ -> None)

(* xor (icmp pred a, b), true -> icmp !pred a, b *)
let xor_icmp_negate =
  rule ~family:"icmp" "xor-icmp-negate" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Xor; ty = Types.Int 1; lhs; rhs; _ } when is_cint 1L rhs -> (
        match def_of ctx lhs with
        | Some (Icmp i) when one_use ctx lhs ->
          Some (Instr (Icmp { i with pred = icmp_negate_pred i.pred }))
        | _ -> None)
      | _ -> None)

(* sdiv x, 2^k -> lshr x, k when the sign bit of x is known zero *)
let sdiv_pow2_nonneg =
  rule ~family:"div" "sdiv-pow2-nonneg" (fun ctx ni ->
      match ni.instr with
      | Binop { op = SDiv; ty; lhs; rhs; _ } -> (
        match cint rhs with
        | Some (w, c) when Bits.is_power_of_two w c && c <> 1L ->
          let k = known ctx w lhs in
          if Bits.bit w k.Known_bits.zero (w - 1) then
            Some
              (Instr
                 (Binop
                    {
                      op = LShr;
                      flags = no_flags;
                      ty;
                      lhs;
                      rhs = const_int w (Int64.of_int (Bits.log2 w c));
                    }))
          else None
        | _ -> None)
      | _ -> None)

(* srem x, 2^k -> and x, 2^k-1 when x is known non-negative *)
let srem_pow2_nonneg =
  rule ~family:"div" "srem-pow2-nonneg" (fun ctx ni ->
      match ni.instr with
      | Binop { op = SRem; ty; lhs; rhs; _ } -> (
        match cint rhs with
        | Some (w, c) when Bits.is_power_of_two w c ->
          let k = known ctx w lhs in
          if Bits.bit w k.Known_bits.zero (w - 1) then
            Some
              (Instr
                 (Binop { op = And; flags = no_flags; ty; lhs; rhs = const_int w (Bits.sub w c 1L) }))
          else None
        | _ -> None)
      | _ -> None)

(* icmp slt x, 0 decided by the known sign bit *)
let icmp_sign_known =
  rule ~family:"icmp" "icmp-sign-known" (fun ctx ni ->
      match ni.instr with
      | Icmp { pred = Slt; ty = Types.Int w; lhs; rhs } when is_zero rhs ->
        let k = known ctx w lhs in
        if Bits.bit w k.Known_bits.zero (w - 1) then Some (Value (const_bool false))
        else if Bits.bit w k.Known_bits.one (w - 1) then Some (Value (const_bool true))
        else None
      | Icmp { pred = Sge; ty = Types.Int w; lhs; rhs } when is_zero rhs ->
        let k = known ctx w lhs in
        if Bits.bit w k.Known_bits.zero (w - 1) then Some (Value (const_bool true))
        else if Bits.bit w k.Known_bits.one (w - 1) then Some (Value (const_bool false))
        else None
      | _ -> None)

(* (x ^ c1) == c2  ->  x == (c1 ^ c2), and the ne form *)
let icmp_eq_xor_const =
  rule ~family:"icmp" "icmp-eq-xor-const" (fun ctx ni ->
      match ni.instr with
      | Icmp { pred = (Eq | Ne) as pred; ty; lhs; rhs } -> (
        match (def_of ctx lhs, cint rhs) with
        | Some (Binop { op = Xor; lhs = x; rhs = inner; _ }), Some (w, c2) -> (
          match cint inner with
          | Some (_, c1) when one_use ctx lhs ->
            Some (Instr (Icmp { pred; ty; lhs = x; rhs = const_int w (Bits.logxor w c1 c2) }))
          | _ -> None)
        | _ -> None)
      | _ -> None)

(* (x | c) has at least the bits of c: x | c == 0 is false when c != 0 is
   covered by known-bits; here the sub-of-self chain: (x - y) where
   x == y via a copy: sub (or x, 0) x -> 0 falls out of or-zero; what is
   genuinely extra: sub x, (add x, c) -> -c *)
let sub_add_const_cancel =
  rule ~family:"sub" "sub-add-const-cancel" (fun ctx ni ->
      match ni.instr with
      | Binop { op = Sub; ty; lhs; rhs; _ } -> (
        match def_of ctx rhs with
        | Some (Binop { op = Add; lhs = x; rhs = inner; _ }) when same_operand x lhs -> (
          match cint inner with
          | Some (w, c) -> Some (Value (const_int w (Bits.neg w c)))
          | None ->
            ignore ty;
            None)
        | _ -> None)
      | _ -> None)

(* select c, x, 0 -> and (sext c), x at i1?  Too clever; instead the widely
   useful: zext (icmp) used only by a trunc back to i1 collapses via
   trunc-of-ext.  Extra here: freeze of a non-poison constant -> constant *)
let freeze_const =
  rule ~family:"cast" "freeze-const" (fun _ctx ni ->
      match ni.instr with
      | Freeze { value = Const (CInt _) as c; _ } -> Some (Value c)
      | _ -> None)

let rules =
  [
    neg_of_neg;
    add_not_self;
    and_not_self;
    or_not_self;
    icmp_zext_bool;
    xor_icmp_negate;
    sdiv_pow2_nonneg;
    srem_pow2_nonneg;
    icmp_sign_known;
    icmp_eq_xor_const;
    sub_add_const_cancel;
    freeze_const;
  ]

(** The instcombine pass: a worklist-free fixpoint driver over the peephole
    rule catalog, mirroring LLVM's single-iteration InstCombine structure.

    Every application is recorded in a trace of (rule, site) pairs.  The
    trace is not just for debugging: it is the supervision signal for the
    surrogate model — the "teacher action sequence" that turns an -O0
    function into its optimized label (see veriopt_llm.Sft). *)

open Veriopt_ir
open Ast

type trace_entry = { rule : string; site : string }

(** All sound rewrite rules, in application priority order. *)
let all_rules : Rewrite.rule list =
  Rules_arith.rules @ Rules_logic.rules @ Rules_shift.rules @ Rules_icmp.rules
  @ Rules_select.rules @ Rules_cast.rules @ Rules_phi.rules @ Rules_extra.rules
  @ Rules_narrow.rules

let rule_names = List.map (fun (r : Rewrite.rule) -> r.Rewrite.rule_name) all_rules

let find_rule name = List.find_opt (fun (r : Rewrite.rule) -> r.Rewrite.rule_name = name) all_rules

(** Apply a single rewrite at the instruction named [site]. *)
let apply_rewrite (f : func) (site : var) (rw : Rewrite.rewrite) : func =
  match rw with
  | Rewrite.Value op ->
    let f = Builder.substitute_operand f ~from:site ~to_:op in
    Builder.replace_instr f ~name:site ~with_:[]
  | Rewrite.Instr instr -> Builder.replace_instr f ~name:site ~with_:[ { name = Some site; instr } ]
  | Rewrite.Expand (pre, result) ->
    let f = Builder.substitute_operand f ~from:site ~to_:result in
    Builder.replace_instr f ~name:site ~with_:pre

(** Find the first (rule, site) applicable in program order with rule
    priority, or [None] at fixpoint. *)
let find_applicable ?(rules = all_rules) (modul : modul) (f : func) :
    (Rewrite.rule * named_instr * Rewrite.rewrite) option =
  let ctx = Rewrite.make_ctx modul f in
  let try_instr ni =
    match ni.name with
    | None -> None
    | Some _ ->
      (* constant folding runs before the rule catalog, like InstCombine *)
      let fold_result =
        match Fold.fold_instr ni.instr with
        | Some op ->
          Some
            ( Rewrite.rule ~family:"fold" "constant-fold" (fun _ _ -> None),
              ni,
              Rewrite.Value op )
        | None -> None
      in
      if fold_result <> None then fold_result
      else
        List.find_map
          (fun (r : Rewrite.rule) ->
            if not r.Rewrite.sound then None
            else
              match r.Rewrite.apply ctx ni with Some rw -> Some (r, ni, rw) | None -> None)
          rules
  in
  List.find_map (fun b -> List.find_map try_instr b.instrs) f.blocks

exception Fuel_exhausted

(** Run instcombine to fixpoint: rule catalog + constant folding + block-local
    memory forwarding + DCE.  [max_steps] bounds pathological rule cycles. *)
let run ?(max_steps = 2000) (modul : modul) (f : func) : func * trace_entry list =
  let trace = ref [] in
  let steps = ref 0 in
  let bump () =
    incr steps;
    if !steps > max_steps then raise Fuel_exhausted
  in
  let f = ref f in
  (try
     let changed = ref true in
     while !changed do
       changed := false;
       (* 1. rule catalog *)
       (match find_applicable modul !f with
       | Some (r, ni, rw) ->
         bump ();
         let site = Option.get ni.name in
         f := apply_rewrite !f site rw;
         trace := { rule = r.Rewrite.rule_name; site } :: !trace;
         changed := true
       | None -> ());
       (* 2. memory forwarding *)
       if not !changed then begin
         let f', t = Rules_mem.forward_loads !f in
         if t <> [] then begin
           bump ();
           f := f';
           trace :=
             List.rev_map
               (fun (e : Rules_mem.trace_entry) -> { rule = e.Rules_mem.rule; site = e.Rules_mem.site })
               t
             @ !trace;
           changed := true
         end
       end;
       if not !changed then begin
         let f', t = Rules_mem.eliminate_dead_stores !f in
         if t <> [] then begin
           bump ();
           f := f';
           trace :=
             List.rev_map
               (fun (e : Rules_mem.trace_entry) -> { rule = e.Rules_mem.rule; site = e.Rules_mem.site })
               t
             @ !trace;
           changed := true
         end
       end;
       (* 3. DCE between sweeps keeps use counts accurate *)
       let f', removed = Dce.run !f in
       if removed > 0 then begin
         f := f';
         changed := true
       end
     done
   with Fuel_exhausted -> ());
  (!f, List.rev !trace)

(** Compile-time evaluation of instructions whose operands are constants.

    Folds only when the result is a well-defined constant: operations that
    would be UB (division by zero, signed division overflow) or poison
    (flag violations, oversized shifts) are left alone — replacing them
    would change, not preserve, semantics. *)

open Veriopt_ir
open Ast

let const_of = function Const (CInt { width; value }) -> Some (width, value) | _ -> None

let fold_binop op (flags : flags) w a b : int64 option =
  let open Bits in
  match op with
  | Add ->
    if (flags.nsw && add_nsw_overflow w a b) || (flags.nuw && add_nuw_overflow w a b) then None
    else Some (add w a b)
  | Sub ->
    if (flags.nsw && sub_nsw_overflow w a b) || (flags.nuw && sub_nuw_overflow w a b) then None
    else Some (sub w a b)
  | Mul ->
    if (flags.nsw && mul_nsw_overflow w a b) || (flags.nuw && mul_nuw_overflow w a b) then None
    else Some (mul w a b)
  | UDiv ->
    if b = 0L || (flags.exact && udiv_exact_violation w a b) then None else Some (udiv w a b)
  | SDiv ->
    if b = 0L || sdiv_overflow w a b || (flags.exact && sdiv_exact_violation w a b) then None
    else Some (sdiv w a b)
  | URem -> if b = 0L then None else Some (urem w a b)
  | SRem -> if b = 0L || sdiv_overflow w a b then None else Some (srem w a b)
  | Shl ->
    if
      shift_amount_poison w b
      || (flags.nsw && shl_nsw_overflow w a b)
      || (flags.nuw && shl_nuw_overflow w a b)
    then None
    else Some (shl w a b)
  | LShr ->
    if shift_amount_poison w b || (flags.exact && lshr_exact_violation w a b) then None
    else Some (lshr w a b)
  | AShr ->
    if shift_amount_poison w b || (flags.exact && ashr_exact_violation w a b) then None
    else Some (ashr w a b)
  | And -> Some (logand w a b)
  | Or -> Some (logor w a b)
  | Xor -> Some (logxor w a b)

(** Fold an instruction to a constant operand when possible. *)
let fold_instr (i : instr) : operand option =
  match i with
  | Binop { op; flags; ty; lhs; rhs } -> (
    match (const_of lhs, const_of rhs) with
    | Some (w, a), Some (_, b) when Types.equal ty (Types.Int w) ->
      Option.map (fun v -> const_int w v) (fold_binop op flags w a b)
    | _ -> None)
  | Icmp { pred; lhs; rhs; _ } -> (
    match (const_of lhs, const_of rhs) with
    | Some (w, a), Some (_, b) -> Some (const_bool (eval_icmp pred w a b))
    | _ -> None)
  | Select { cond; if_true; if_false; _ } -> (
    match const_of cond with
    | Some (1, 1L) -> Some if_true
    | Some (1, 0L) -> Some if_false
    | _ -> None)
  | Cast { op; src_ty; value; dst_ty } -> (
    match (const_of value, src_ty, dst_ty) with
    | Some (w, v), Types.Int _, Types.Int dw -> (
      match op with
      | Trunc -> Some (const_int dw (Bits.trunc w dw v))
      | ZExt -> Some (const_int dw (Bits.zext w dw v))
      | SExt -> Some (const_int dw (Bits.sext w dw v))
      | Bitcast -> Some (const_int dw v)
      | PtrToInt | IntToPtr -> None)
    | _ -> None)
  | Phi { incoming = [ (op, _) ]; _ } -> Some op
  | Alloca _ | Load _ | Store _ | Gep _ | Phi _ | Call _ | Freeze _ -> None

(** Dead code elimination: remove unused side-effect-free instructions to a
    fixpoint.  Returns the function and how many instructions were removed. *)

val has_side_effects : Veriopt_ir.Ast.instr -> bool
val run : Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func * int

(** Dead code elimination: remove instructions whose results are unused and
    which have no side effects, plus allocas with no remaining uses. *)

open Veriopt_ir
open Ast

let has_side_effects = function
  | Store _ | Call _ -> true
  (* Division can trap (UB); removing it removes UB, which is a refinement,
     but instcombine-style DCE keeps it simple and only deletes pure ops.
     LLVM does delete unused divisions (removing UB is legal); so do we. *)
  | Binop _ | Icmp _ | Select _ | Cast _ | Alloca _ | Load _ | Gep _ | Phi _ | Freeze _ -> false

(** One DCE sweep to fixpoint.  Returns the function and how many
    instructions were removed. *)
let run (f : func) : func * int =
  let removed = ref 0 in
  let f = ref f in
  let changed = ref true in
  while !changed do
    changed := false;
    let uses = Builder.use_counts !f in
    let used v = Option.value ~default:0 (Hashtbl.find_opt uses v) > 0 in
    let f' =
      Builder.map_blocks !f (fun b ->
          {
            b with
            instrs =
              List.filter
                (fun ni ->
                  match (ni.name, has_side_effects ni.instr) with
                  | Some n, false ->
                    if used n then true
                    else (
                      incr removed;
                      changed := true;
                      false)
                  | _ -> true)
                b.instrs;
          })
    in
    f := f'
  done;
  (!f, !removed)

(** Mini-C program generator: the offline stand-in for the LLVM and GCC test
    suites, mixing random arithmetic with the cleanup idioms test suites are
    full of.  Deterministic in the seed. *)

type ty = I8 | I16 | I32 | I64

val bits : ty -> int

type binop = CAdd | CSub | CMul | CDiv | CMod | CAnd | COr | CXor | CShl | CShr
type cmp = CEq | CNe | CLt | CLe | CGt | CGe

type expr =
  | Const of ty * int64
  | Var of string
  | Bin of binop * expr * expr
  | Cmp of cmp * expr * expr
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Cast of ty * expr

type stmt =
  | Decl of string * ty * expr
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Switch of string * (int64 * stmt list) list * stmt list
  | For of string * int * stmt list
  | CallStmt of string * expr list
  | Return of expr

type cfunc = {
  name : string;
  ret : ty;
  params : (string * ty) list;
  body : stmt list;
  uses_ext_call : bool;
}

type profile = {
  max_depth : int;
  max_stmts : int;
  allow_branches : bool;
  allow_loops : bool;
  allow_calls : bool;
  idiom_bias : float;
}

val default_profile : profile

val generate : ?profile:profile -> seed:int -> name:string -> unit -> cfunc

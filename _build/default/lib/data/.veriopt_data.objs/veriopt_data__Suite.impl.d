lib/data/suite.ml: Ast Cgen Fmt List Lower Printer Random Veriopt_alive Veriopt_ir Veriopt_nlp Veriopt_passes

lib/data/lower.mli: Cgen Veriopt_ir

lib/data/cgen.ml: Fmt Int64 List Random Veriopt_ir

lib/data/lower.ml: Ast Cgen Fmt Int64 List Types Veriopt_ir

lib/data/cgen.mli:

lib/data/suite.mli: Format Veriopt_ir Veriopt_passes

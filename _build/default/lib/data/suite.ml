(** Dataset construction, following §IV-A of the paper:

    1. generate source programs ("test suite" surrogate) and lower at -O0;
    2. produce reference labels with `-instcombine`;
    3. keep only pairs Alive proves semantically equivalent (no UB, no
       timeout), and only functions within the 2048-token context limit;
    4. drop pairs where instcombine found nothing to do (the paper notes no
       such samples survive into its sets);
    5. split train / validation disjointly by seed. *)

open Veriopt_ir
module Alive = Veriopt_alive.Alive
module Pass_manager = Veriopt_passes.Pass_manager

type sample = {
  id : int;
  modul : Ast.modul; (* declarations context shared by src and label *)
  src : Ast.func; (* the -O0 form *)
  label : Ast.func; (* the -instcombine reference *)
  trace : Pass_manager.trace_entry list; (* rule applications src -> label *)
  src_text : string;
  label_text : string;
}

type stats = {
  generated : int;
  kept : int;
  dropped_no_change : int;
  dropped_not_equivalent : int;
  dropped_inconclusive : int;
  dropped_too_long : int;
}

let empty_stats =
  {
    generated = 0;
    kept = 0;
    dropped_no_change = 0;
    dropped_not_equivalent = 0;
    dropped_inconclusive = 0;
    dropped_too_long = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "generated %d; kept %d; dropped: unchanged %d, not-equivalent %d, inconclusive %d, too-long %d"
    s.generated s.kept s.dropped_no_change s.dropped_not_equivalent s.dropped_inconclusive
    s.dropped_too_long

(** Build one candidate sample from a seed; [None] when filtered out. *)
let build_sample ?(verify = true) ~(seed : int) (id : int) : (sample, stats -> stats) result =
  let profile =
    (* vary shape across the corpus *)
    let r = Random.State.make [| seed; 77 |] in
    {
      Cgen.default_profile with
      Cgen.max_stmts = 2 + Random.State.int r 6;
      Cgen.max_depth = 2 + Random.State.int r 2;
      Cgen.allow_loops = Random.State.int r 4 = 0;
      Cgen.allow_calls = Random.State.int r 3 = 0;
    }
  in
  let cf = Cgen.generate ~profile ~seed ~name:(Fmt.str "f%d" id) () in
  let modul, src = Lower.lower cf in
  let label, trace = Pass_manager.instcombine modul src in
  let src_text = Printer.func_to_string src in
  let label_text = Printer.func_to_string label in
  if trace = [] then Error (fun s -> { s with dropped_no_change = s.dropped_no_change + 1 })
  else if not (Veriopt_nlp.Tokenizer.within_limit src_text) then
    Error (fun s -> { s with dropped_too_long = s.dropped_too_long + 1 })
  else if not verify then Ok { id; modul; src; label; trace; src_text; label_text }
  else
    match (Alive.verify_funcs modul ~src ~tgt:label).Alive.category with
    | Alive.Equivalent -> Ok { id; modul; src; label; trace; src_text; label_text }
    | Alive.Semantic_error | Alive.Syntax_error ->
      Error (fun s -> { s with dropped_not_equivalent = s.dropped_not_equivalent + 1 })
    | Alive.Inconclusive ->
      Error (fun s -> { s with dropped_inconclusive = s.dropped_inconclusive + 1 })

type dataset = { samples : sample list; stats : stats }

(** Build [n] samples starting from [seed0].  Training and validation sets
    use disjoint seed ranges, which keeps them strictly separated (the
    paper's "strictly isolated ... to avoid any data leakage"). *)
let build ?(verify = true) ~seed0 ~n () : dataset =
  let rec go i id acc stats =
    if id >= n then { samples = List.rev acc; stats }
    else
      let stats = { stats with generated = stats.generated + 1 } in
      match build_sample ~verify ~seed:(seed0 + i) id with
      | Ok s -> go (i + 1) (id + 1) (s :: acc) { stats with kept = stats.kept + 1 }
      | Error bump -> go (i + 1) id acc (bump stats)
  in
  go 0 0 [] empty_stats

let train_seed_base = 1_000_000
let validation_seed_base = 9_000_000

let training ?(verify = true) ~n () = build ~verify ~seed0:train_seed_base ~n ()
let validation ?(verify = true) ~n () = build ~verify ~seed0:validation_seed_base ~n ()

(** Clang-`-O0`-style lowering from mini-C to IR: every local in an
    entry-block alloca, loads/stores around each use, icmp+zext comparisons,
    phi-based ternaries, a common return block through a retval slot. *)

val module_decls : Veriopt_ir.Ast.decl list
(** The external functions ([ext], [sink]) lowered modules may call. *)

val lower : Cgen.cfunc -> Veriopt_ir.Ast.modul * Veriopt_ir.Ast.func

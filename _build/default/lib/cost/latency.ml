(** Estimated latency, mirroring the paper's metric: the sum over all
    instructions of LLVM's [getInstructionCost(..., TCK_Latency)] on an
    AArch64 target.  The per-opcode costs below follow the typical AArch64
    scheduling-model latencies that API reports (ALU 1, multiply 3, divide
    double-digit, loads 4). *)

open Veriopt_ir
open Ast

let binop_cost = function
  | Add | Sub | And | Or | Xor -> 1
  | Shl | LShr | AShr -> 1
  | Mul -> 3
  | UDiv | SDiv -> 12
  | URem | SRem -> 15 (* divide plus multiply-subtract *)

let instr_cost = function
  | Binop { op; _ } -> binop_cost op
  | Icmp _ -> 1
  | Select _ -> 1
  | Cast { op = Bitcast; _ } -> 0
  | Cast _ -> 1
  | Alloca _ -> 0 (* folded into frame setup *)
  | Load _ -> 4
  | Store _ -> 1
  | Gep { indices; _ } ->
    (* address arithmetic; constant-indexed geps fold into addressing modes *)
    if List.for_all (fun (_, o) -> match o with Const _ -> true | _ -> false) indices then 0
    else 1
  | Phi _ -> 0 (* resolved to moves at predecessors; negligible for latency *)
  | Call { args; _ } -> 4 + List.length args
  | Freeze _ -> 0

let terminator_cost = function
  | Ret _ -> 1
  | Br _ -> 1
  | CondBr _ -> 1
  | Switch { cases; _ } -> 1 + List.length cases
  | Unreachable -> 0

(** Module-level estimated latency of a function: the static sum the paper
    uses (its footnote 6 discusses why this is adequate for peephole-scale
    transformations). *)
let of_func (f : func) : int =
  List.fold_left
    (fun acc b ->
      List.fold_left (fun acc ni -> acc + instr_cost ni.instr) acc b.instrs
      + terminator_cost b.term)
    0 f.blocks

(** Binary-size model: a miniature AArch64-flavoured instruction selector
    estimating 4-byte machine instructions per IR instruction, plus `.data`
    from initialized globals — the paper's `llvm-size` (.text + .data,
    no .bss) methodology. *)

val text_bytes_of_func : Veriopt_ir.Ast.func -> int
val data_bytes : Veriopt_ir.Ast.modul -> int
val of_func : ?modul:Veriopt_ir.Ast.modul -> Veriopt_ir.Ast.func -> int

(** Instruction count (terminators included, as in LLVM). *)

val of_func : Veriopt_ir.Ast.func -> int

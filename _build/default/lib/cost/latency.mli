(** Estimated latency: the paper's metric — a static per-instruction sum in
    the style of LLVM's [getInstructionCost(..., TCK_Latency)] on AArch64. *)

val instr_cost : Veriopt_ir.Ast.instr -> int
val terminator_cost : Veriopt_ir.Ast.terminator -> int
val of_func : Veriopt_ir.Ast.func -> int

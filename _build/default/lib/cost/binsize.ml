(** Binary size model: a tiny AArch64-flavoured instruction selector that
    estimates how many 4-byte machine instructions each IR instruction lowers
    to, plus `.data` contributions from globals.  Follows the paper's
    `llvm-size` methodology: `.text` + `.data`, excluding `.bss`. *)

open Veriopt_ir
open Ast

(* Can an integer constant be encoded as an AArch64 arithmetic immediate
   (12 bits, optionally shifted)?  Oversized immediates need a mov/movk
   sequence. *)
let imm_cost (w : int) (v : int64) : int =
  let sv = Bits.to_signed w v in
  if sv >= 0L && sv < 4096L then 0
  else if Int64.neg sv >= 0L && Int64.neg sv < 4096L then 0
  else if w <= 16 then 1
  else if w <= 32 then if Int64.logand sv 0xffffL = sv then 1 else 2
  else 2

let operand_imm_cost = function
  | Const (CInt { width; value }) -> imm_cost width value
  | _ -> 0

let binop_insns op rhs =
  let materialize = operand_imm_cost rhs in
  match op with
  | Add | Sub | And | Or | Xor | Shl | LShr | AShr -> 1 + materialize
  | Mul -> 1 + materialize
  | UDiv | SDiv -> 1 + materialize
  | URem | SRem -> 2 + materialize (* udiv/sdiv + msub *)

let instr_insns = function
  | Binop { op; rhs; _ } -> binop_insns op rhs
  | Icmp { rhs; _ } -> 2 + operand_imm_cost rhs (* cmp + cset *)
  | Select _ -> 1 (* csel *)
  | Cast { op = Bitcast; _ } -> 0
  | Cast _ -> 1 (* ubfx/sxtw/uxt *)
  | Alloca _ -> 0 (* frame setup accounted per function *)
  | Load _ -> 1
  | Store { value; _ } -> 1 + operand_imm_cost value
  | Gep { indices; _ } ->
    if List.for_all (fun (_, o) -> match o with Const _ -> true | _ -> false) indices then 0
    else 1
  | Phi { incoming; _ } -> List.length incoming (* moves in predecessors *)
  | Call { args; _ } -> 1 + List.length args (* bl + argument moves *)
  | Freeze _ -> 0

let terminator_insns = function
  | Ret _ -> 1
  | Br _ -> 1
  | CondBr _ -> 1 (* b.cc; the compare was counted at the icmp *)
  | Switch { cases; _ } -> 2 * List.length cases |> max 1
  | Unreachable -> 1 (* brk *)

let has_frame (f : func) =
  List.exists
    (fun b ->
      List.exists
        (fun ni -> match ni.instr with Alloca _ | Call _ -> true | _ -> false)
        b.instrs)
    f.blocks

(** Estimated `.text` bytes of one function. *)
let text_bytes_of_func (f : func) : int =
  let body =
    List.fold_left
      (fun acc b ->
        List.fold_left (fun acc ni -> acc + instr_insns ni.instr) acc b.instrs
        + terminator_insns b.term)
      0 f.blocks
  in
  let frame = if has_frame f then 4 else 2 in
  4 * (body + frame)

(** `.data` bytes of a module's globals (zero-initialized data would be
    `.bss`, which llvm-size excludes; so do we). *)
let data_bytes (m : modul) : int =
  List.fold_left
    (fun acc (g : global) -> if g.init = 0L then acc else acc + Types.size_in_bytes g.gty)
    0 m.globals

(** The paper's binary-size metric for a single-function module. *)
let of_func ?(modul = empty_module) (f : func) : int =
  text_bytes_of_func f + data_bytes modul

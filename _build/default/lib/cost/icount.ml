(** Instruction count: the number of IR instructions in a function,
    terminators included (they are instructions in LLVM). *)

open Veriopt_ir.Ast

let of_func (f : func) : int =
  List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

lib/cost/latency.mli: Veriopt_ir

lib/cost/binsize.ml: Ast Bits Int64 List Types Veriopt_ir

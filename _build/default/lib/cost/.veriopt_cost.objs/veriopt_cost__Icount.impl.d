lib/cost/icount.ml: List Veriopt_ir

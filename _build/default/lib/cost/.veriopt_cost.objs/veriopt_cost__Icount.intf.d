lib/cost/icount.mli: Veriopt_ir

lib/cost/binsize.mli: Veriopt_ir

lib/cost/latency.ml: Ast List Veriopt_ir

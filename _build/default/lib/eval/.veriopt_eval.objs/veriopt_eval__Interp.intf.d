lib/eval/interp.mli: Ast Types Veriopt_ir

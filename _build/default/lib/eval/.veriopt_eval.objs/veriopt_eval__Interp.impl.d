lib/eval/interp.ml: Array Ast Bits Bytes Char Fmt Hashtbl Int64 List Option Types Veriopt_ir

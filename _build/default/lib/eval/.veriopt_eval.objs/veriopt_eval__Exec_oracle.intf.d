lib/eval/exec_oracle.mli: Interp Veriopt_ir

lib/eval/exec_oracle.ml: Ast Bits Int64 Interp List Random Types Veriopt_ir

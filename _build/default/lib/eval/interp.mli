(** Concrete interpreter for the IR subset, implementing the LLVM semantics
    the verifier encodes symbolically: poison propagation, UB detection,
    byte-addressed memory for allocas and globals, observable call traces. *)

open Veriopt_ir

type value =
  | VInt of { width : int; v : int64 }  (** canonical: masked *)
  | VPtr of { base : int; offset : int }
  | VPoison

exception Undefined_behavior of string
exception Out_of_fuel

val vint : int -> int64 -> value

type outcome = {
  ret : value option;
  call_trace : (Ast.gname * value list) list;
  globals_final : (Ast.gname * value) list;  (** observable memory at return *)
  steps : int;  (** dynamic instructions executed *)
}

val run :
  ?fuel:int ->
  ?external_fn:(Ast.gname -> value list -> Types.t -> value) ->
  ?undef_value:(Types.t -> value) ->
  Ast.modul ->
  Ast.func ->
  value list ->
  outcome
(** Execute a function on concrete arguments.
    @raise Undefined_behavior on UB (division traps, memory errors, branch
    on poison, ...)
    @raise Out_of_fuel when the step budget is exhausted. *)

(** Group Relative Policy Optimization with the paper's simplifications
    (§IV-B): no KL penalty, single update per rollout batch, token-level
    (DAPO-style) loss normalization. *)

module Model = Veriopt_llm.Model

type rollout = { steps : Model.step list; reward : float }

type config = {
  group_size : int;
  learning_rate : float;
  clip_norm : float;
  temperature : float;
}

val default_config : config

val advantages : float array -> float array
(** Group-relative advantages: rewards standardized within the group. *)

val update : config -> Model.t -> (rollout * float) list -> unit
(** One gradient step from (rollout, advantage) pairs.  Token-level
    normalization divides by the batch's total decision count; global-norm
    clipping replaces the KL penalty; frozen parameters do not move. *)

val ema : ?alpha:float -> float list -> float list
(** Exponential moving average (the Fig. 4 smoothing, alpha = 0.95). *)

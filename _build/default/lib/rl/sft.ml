(** Supervised fine-tuning: maximize the policy's log-likelihood of teacher
    decision sequences.

    Two kinds of training data, as in the paper's warm-up stage (§III-C2):

    - {e first-time} samples: the instcombine rule trace replayed as the
      teacher's edit sequence, self-diagnosed "OK";
    - {e correction} samples: a failure recorded during Model-Zero training
      — the bad attempt verbatim, the true Alive verdict class as the
      diagnosis, then the correct edit sequence. *)

open Veriopt_ir
module Model = Veriopt_llm.Model
module Actions = Veriopt_llm.Actions
module Diag = Veriopt_llm.Diag
module Instcombine = Veriopt_passes.Instcombine
module Rewrite = Veriopt_passes.Rewrite
module Suite = Veriopt_data.Suite

type datum = {
  modul : Ast.modul;
  src : Ast.func;
  attempt1 : Actions.action list; (* includes its terminal Stop/Corrupt/Copy *)
  diagnosis : (Diag.self_evidence * Diag.error_class) option; (* None in generic mode *)
  attempt2 : Actions.action list option;
}

(** A failure observed while training Model-Zero: the raw material for
    correction-augmented samples (the paper's "diagnostic-augmented sample
    generator" role of Model-Zero). *)
type failure_record = {
  f_sample : Suite.sample;
  bad_actions : Actions.action list;
  f_evidence : Diag.self_evidence;
  true_class : Diag.error_class;
  alive_message : string;
}

(* The teacher's edit sequence: mirror the instcombine driver, emitting the
   (rule, site) it would pick at each state. *)
let teacher_edits (modul : Ast.modul) (src : Ast.func) : Actions.action list =
  let rec go cur acc n =
    if n > 32 then List.rev (Actions.Stop :: acc)
    else
      match Instcombine.find_applicable modul cur with
      | Some (r, ni, _) ->
        let site = Option.get ni.Ast.name in
        let a = Actions.Apply_rule (r.Rewrite.rule_name, site) in
        go (Actions.apply_rule modul cur r.Rewrite.rule_name site) (a :: acc) (n + 1)
      | None ->
        if Actions.pass_applicable modul cur Actions.Forward_loads then
          let a = Actions.Apply_pass Actions.Forward_loads in
          go (Actions.apply_pass modul cur Actions.Forward_loads) (a :: acc) (n + 1)
        else if Actions.pass_applicable modul cur Actions.Dead_stores then
          let a = Actions.Apply_pass Actions.Dead_stores in
          go (Actions.apply_pass modul cur Actions.Dead_stores) (a :: acc) (n + 1)
        else List.rev (Actions.Stop :: acc)
  in
  go src [] 0

let first_time_datum ~(augmented : bool) (s : Suite.sample) : datum =
  {
    modul = s.Suite.modul;
    src = s.Suite.src;
    attempt1 = teacher_edits s.Suite.modul s.Suite.src;
    diagnosis = (if augmented then Some (Diag.Saw_only_sound, Diag.C_ok) else None);
    attempt2 = None;
  }

let correction_datum (r : failure_record) : datum =
  {
    modul = r.f_sample.Suite.modul;
    src = r.f_sample.Suite.src;
    attempt1 = r.bad_actions;
    diagnosis = Some (r.f_evidence, r.true_class);
    attempt2 = Some (teacher_edits r.f_sample.Suite.modul r.f_sample.Suite.src);
  }

(* ------------------------------------------------------------------ *)
(* Likelihood gradient of a teacher sequence *)

let bump grad k v = Hashtbl.replace grad k (v +. Option.value ~default:0. (Hashtbl.find_opt grad k))

(* Cross-entropy gradient for choosing [target] among [avail]. *)
let grade_choice (model : Model.t) grad ~sample_id (avail : Model.avail list) (target_index : int)
    : unit =
  let arr = Array.of_list avail in
  let scores = Array.map (Model.score model ~sample_id) arr in
  let probs = Model.softmax model.Model.temperature scores in
  Array.iteri
    (fun j (a : Model.avail) ->
      let indicator = if j = target_index then 1.0 else 0.0 in
      List.iter (fun k -> bump grad k (indicator -. probs.(j))) a.Model.keys)
    arr

let find_action (avail : Model.avail list) (a : Actions.action) : int option =
  let s = Actions.action_to_string a in
  let rec go i = function
    | [] -> None
    | (x : Model.avail) :: rest ->
      if Actions.action_to_string x.Model.action = s then Some i else go (i + 1) rest
  in
  go 0 avail

(* Replay an attempt's actions, accumulating gradient; returns how many
   teacher actions could not be matched (diagnostic). *)
let replay_attempt (model : Model.t) grad ~sample_id ?(mask = []) (modul : Ast.modul)
    (src : Ast.func) (actions : Actions.action list) : int =
  let missing = ref 0 in
  let cur = ref src in
  List.iteri
    (fun i a ->
      let avail = Model.available ~mask ~first:(i = 0) modul !cur in
      (match find_action avail a with
      | Some idx -> grade_choice model grad ~sample_id avail idx
      | None -> incr missing);
      match a with
      | Actions.Apply_rule (r, site) -> cur := Actions.apply_rule modul !cur r site
      | Actions.Apply_pass p -> cur := Actions.apply_pass modul !cur p
      | Actions.Unsound (k, idx) -> cur := Actions.apply_unsound !cur k idx
      | Actions.Corrupt _ | Actions.Copy_input | Actions.Stop -> ())
    actions;
  !missing

let mask_of_evidence = function
  | Diag.Saw_corruption c -> [ Actions.action_to_string (Actions.Corrupt c) ]
  | Diag.Saw_unsound k -> List.init 3 (fun i -> Actions.action_to_string (Actions.Unsound (k, i)))
  | Diag.Saw_only_sound -> []

(* One datum's gradient contribution. *)
let grade_datum (model : Model.t) grad (d : datum) : unit =
  let sample_id = Hashtbl.hash (Printer.func_to_string d.src) in
  (* teacher always emits the correct format *)
  grade_choice model grad ~sample_id Model.format_avail 0;
  let (_ : int) = replay_attempt model grad ~sample_id d.modul d.src d.attempt1 in
  match d.diagnosis with
  | None -> ()
  | Some (evidence, cls) -> (
    let avail = Model.diag_avail evidence in
    let idx =
      let rec find i = function
        | [] -> 0
        | c :: rest -> if c = cls then i else find (i + 1) rest
      in
      find 0 Diag.all_classes
    in
    grade_choice model grad ~sample_id avail idx;
    match d.attempt2 with
    | None -> ()
    | Some actions ->
      let mask = mask_of_evidence evidence in
      let (_ : int) =
        replay_attempt model grad ~sample_id ~mask d.modul d.src actions
      in
      ())

type config = { epochs : int; learning_rate : float; clip_norm : float }

let default_config = { epochs = 4; learning_rate = 0.5; clip_norm = 8.0 }

(** Train by maximum likelihood over the data.  Single-threaded, full-batch
    per epoch with gradient clipping. *)
let train (cfg : config) (model : Model.t) (data : datum list) : unit =
  for _epoch = 1 to cfg.epochs do
    let grad = Hashtbl.create 512 in
    List.iter (grade_datum model grad) data;
    let n = float_of_int (max 1 (List.length data)) in
    let norm = sqrt (Hashtbl.fold (fun _ g acc -> acc +. (g *. g)) grad 0.) /. n in
    let scale = if norm > cfg.clip_norm then cfg.clip_norm /. norm else 1.0 in
    Hashtbl.iter
      (fun k g ->
        if not (Model.is_frozen model k) then begin
          let p = Model.param model k in
          p := !p +. (cfg.learning_rate *. scale *. g /. n)
        end)
      grad
  done

(** Group Relative Policy Optimization, with the paper's four
    simplifications (§IV-B): no KL penalty (stability comes from gradient
    clipping), a single update per batch of rollouts, token-level loss
    normalization (DAPO-style: every decision contributes equally, not every
    sequence), and greedy decoding reserved for evaluation. *)

module Model = Veriopt_llm.Model

type rollout = { steps : Model.step list; reward : float }

type config = {
  group_size : int;
  learning_rate : float;
  clip_norm : float;
  temperature : float;
}

let default_config = { group_size = 6; learning_rate = 0.6; clip_norm = 5.0; temperature = 1.0 }

(** Group-relative advantages: reward standardized within the group. *)
let advantages (rewards : float array) : float array =
  let n = float_of_int (Array.length rewards) in
  let mean = Array.fold_left ( +. ) 0. rewards /. n in
  let var = Array.fold_left (fun acc r -> acc +. ((r -. mean) ** 2.)) 0. rewards /. n in
  let std = sqrt var in
  Array.map (fun r -> (r -. mean) /. (std +. 1e-4)) rewards

(* d log pi / d theta for one softmax decision: +1 on the chosen action's
   keys, -p_j on every available action's keys. *)
let accumulate_step (grad : (string, float) Hashtbl.t) (coeff : float) (s : Model.step) : unit =
  let bump k v = Hashtbl.replace grad k (v +. Option.value ~default:0. (Hashtbl.find_opt grad k)) in
  Array.iteri
    (fun j keys ->
      let p = s.Model.probs.(j) in
      let indicator = if j = s.Model.chosen then 1.0 else 0.0 in
      List.iter (fun k -> bump k (coeff *. (indicator -. p))) keys)
    s.Model.keys

(** One GRPO update from a group of rollouts on the same prompt (or a batch
    of groups: pass each group's advantages pre-computed via [advantages]).
    Token-level normalization divides by the total number of decisions in
    the whole batch. *)
let update (cfg : config) (model : Model.t) (rollouts : (rollout * float) list) : unit =
  let total_steps =
    List.fold_left (fun acc (r, _) -> acc + List.length r.steps) 0 rollouts |> max 1
  in
  let grad : (string, float) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r, adv) ->
      let coeff = adv /. float_of_int total_steps in
      List.iter (accumulate_step grad coeff) r.steps)
    rollouts;
  (* global-norm gradient clipping in place of a KL penalty *)
  let norm = sqrt (Hashtbl.fold (fun _ g acc -> acc +. (g *. g)) grad 0.) in
  let scale = if norm > cfg.clip_norm then cfg.clip_norm /. norm else 1.0 in
  Hashtbl.iter
    (fun k g ->
      if not (Model.is_frozen model k) then begin
        let p = Model.param model k in
        p := !p +. (cfg.learning_rate *. scale *. g)
      end)
    grad

(** Exponential moving average used for the Fig. 4 training curves. *)
let ema ?(alpha = 0.95) (xs : float list) : float list =
  match xs with
  | [] -> []
  | x0 :: _ ->
    let acc = ref x0 in
    List.map
      (fun x ->
        acc := (alpha *. !acc) +. ((1. -. alpha) *. x);
        !acc)
      xs

lib/rl/grpo.mli: Veriopt_llm

lib/rl/trainer.mli: Sft Veriopt_data Veriopt_llm

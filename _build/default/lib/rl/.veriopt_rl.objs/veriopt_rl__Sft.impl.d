lib/rl/sft.ml: Array Ast Hashtbl List Option Printer Veriopt_data Veriopt_ir Veriopt_llm Veriopt_passes

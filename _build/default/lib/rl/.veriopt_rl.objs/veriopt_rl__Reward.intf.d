lib/rl/reward.mli: Veriopt_alive Veriopt_data Veriopt_ir Veriopt_llm

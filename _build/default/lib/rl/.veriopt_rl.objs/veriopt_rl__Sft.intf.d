lib/rl/sft.mli: Veriopt_data Veriopt_ir Veriopt_llm

lib/rl/reward.ml: Ast Builder Float List Parser Printer Veriopt_alive Veriopt_cost Veriopt_data Veriopt_ir Veriopt_llm Veriopt_nlp

lib/rl/grpo.ml: Array Hashtbl List Option Veriopt_llm

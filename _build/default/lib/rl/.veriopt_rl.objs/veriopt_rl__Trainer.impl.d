lib/rl/trainer.ml: Array Fmt Grpo List Random Reward Sft Veriopt_alive Veriopt_cost Veriopt_data Veriopt_llm

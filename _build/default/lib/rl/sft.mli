(** Supervised fine-tuning: maximize the policy's likelihood of teacher
    decision sequences — instcombine traces ("first-time" samples) and
    Model-Zero failures with their true diagnoses ("correction" samples). *)

module Model = Veriopt_llm.Model
module Actions = Veriopt_llm.Actions
module Diag = Veriopt_llm.Diag
module Suite = Veriopt_data.Suite

type datum = {
  modul : Veriopt_ir.Ast.modul;
  src : Veriopt_ir.Ast.func;
  attempt1 : Actions.action list;
  diagnosis : (Diag.self_evidence * Diag.error_class) option;
  attempt2 : Actions.action list option;
}

type failure_record = {
  f_sample : Suite.sample;
  bad_actions : Actions.action list;
  f_evidence : Diag.self_evidence;
  true_class : Diag.error_class;
  alive_message : string;
}

val teacher_edits : Veriopt_ir.Ast.modul -> Veriopt_ir.Ast.func -> Actions.action list
(** The instcombine driver's own action sequence for this input. *)

val first_time_datum : augmented:bool -> Suite.sample -> datum
val correction_datum : failure_record -> datum

val mask_of_evidence : Diag.self_evidence -> string list

type config = { epochs : int; learning_rate : float; clip_norm : float }

val default_config : config

val train : config -> Model.t -> datum list -> unit

lib/alive/encode.ml: Ast Bits Cfg Fmt Hashtbl Int64 List Map Option Types Unroll Veriopt_ir Veriopt_smt

lib/alive/encode.mli: Ast Veriopt_ir Veriopt_smt

lib/alive/alive.mli: Veriopt_ir

lib/alive/diagnostics.ml: Buffer Encode Fmt Int64 List Option Veriopt_smt

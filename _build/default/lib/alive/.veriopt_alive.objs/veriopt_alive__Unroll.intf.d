lib/alive/unroll.mli: Veriopt_ir

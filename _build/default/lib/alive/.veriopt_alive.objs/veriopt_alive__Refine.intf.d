lib/alive/refine.mli: Encode Veriopt_smt

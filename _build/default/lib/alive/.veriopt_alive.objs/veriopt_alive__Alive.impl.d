lib/alive/alive.ml: Ast Builder Cfg Diagnostics Encode Fmt Int64 List Option Parser Refine String Types Validator Veriopt_eval Veriopt_ir Veriopt_smt

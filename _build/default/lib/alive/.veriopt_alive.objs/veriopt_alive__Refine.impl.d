lib/alive/refine.ml: Encode Fmt List Veriopt_smt

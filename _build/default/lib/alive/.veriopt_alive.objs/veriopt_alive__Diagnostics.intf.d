lib/alive/diagnostics.mli: Encode Veriopt_smt

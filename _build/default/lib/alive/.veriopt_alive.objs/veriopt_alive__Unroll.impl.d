lib/alive/unroll.ml: Ast Cfg Fmt Hashtbl List Option Veriopt_ir

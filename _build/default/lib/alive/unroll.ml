(** Bounded loop unrolling for translation validation.

    Like Alive2, we validate loops by unrolling them [k] times: the function
    body is cloned [k] times, back edges of copy [i] are redirected to copy
    [i+1], and the last copy's back edges land in a distinguished
    "bound-exhausted" block.  The encoder treats reaching that block not as
    UB but as "execution left the validated bound"; the refinement check
    only applies to executions that stay within the bound.

    Block labels are copy-suffixed in every clone (clones need distinct
    labels), but value names are suffixed only when their defining block is
    reachable from a loop header: values defined strictly before every loop
    exist once (in copy 0) and later copies keep referring to that single
    definition.  Clones of before-loop blocks are unreachable and never
    encoded, so their duplicate definitions are harmless. *)

open Veriopt_ir
open Ast

let exhausted_label = "__bound_exhausted"

(* Blocks reachable from any of [roots] in the full edge relation. *)
let reachable_from (f : func) (roots : label list) : (label, unit) Hashtbl.t =
  let succs = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace succs b.label (Ast.successors b.term)) f.blocks;
  let seen = Hashtbl.create 16 in
  let rec dfs l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter dfs (try Hashtbl.find succs l with Not_found -> [])
    end
  in
  List.iter dfs roots;
  seen

(** [unroll k f] returns an acyclic version of [f].  Every cycle passes
    through a back edge (true for the reducible CFGs our frontend emits; an
    irreducible graph still becomes acyclic since non-back edges stay within
    one copy and back edges only point to later copies).  Returns [f]
    unchanged when it is already acyclic. *)
let unroll (k : int) (f : func) : func =
  let cfg = Cfg.of_func f in
  let back = Cfg.back_edges cfg in
  if back = [] then f
  else begin
    let is_back src dst = List.mem (src, dst) back in
    (* Value names that vary per iteration: those defined in blocks reachable
       from a loop header. *)
    let loop_region = reachable_from f (List.map snd back) in
    let varying = Hashtbl.create 64 in
    List.iter
      (fun b ->
        if Hashtbl.mem loop_region b.label then
          List.iter
            (fun { name; _ } ->
              match name with Some n -> Hashtbl.replace varying n () | None -> ())
            b.instrs)
      f.blocks;
    let cn_label i l = if i = 0 then l else Fmt.str "%s.u%d" l i in
    let cn_value i v =
      if i = 0 || not (Hashtbl.mem varying v) then v else Fmt.str "%s.u%d" v i
    in
    let copy_block i (b : block) : block =
      let rename_op j = function Var v -> Var (cn_value j v) | op -> op in
      let redirect dst =
        if is_back b.label dst then if i = k - 1 then exhausted_label else cn_label (i + 1) dst
        else cn_label i dst
      in
      let instrs =
        List.map
          (fun { name; instr } ->
            let instr =
              match instr with
              | Phi p ->
                (* A value arriving over a back edge was defined in the
                   previous copy; forward-edge values live in this copy. *)
                let incoming =
                  List.filter_map
                    (fun (op, from) ->
                      if is_back from b.label then
                        if i = 0 then None
                        else Some (rename_op (i - 1) op, cn_label (i - 1) from)
                      else Some (rename_op i op, cn_label i from))
                    p.incoming
                in
                Phi { p with incoming }
              | _ -> map_instr_operands (rename_op i) instr
            in
            { name = Option.map (cn_value i) name; instr })
          b.instrs
      in
      let term =
        match map_terminator_operands (rename_op i) b.term with
        | Br l -> Br (redirect l)
        | CondBr c -> CondBr { c with if_true = redirect c.if_true; if_false = redirect c.if_false }
        | Switch s ->
          Switch
            {
              s with
              default = redirect s.default;
              cases = List.map (fun (v, l) -> (v, redirect l)) s.cases;
            }
        | (Ret _ | Unreachable) as t -> t
      in
      { label = cn_label i b.label; instrs; term }
    in
    let copies = List.concat (List.init k (fun i -> List.map (copy_block i) f.blocks)) in
    let exhausted = { label = exhausted_label; instrs = []; term = Unreachable } in
    { f with blocks = copies @ [ exhausted ] }
  end

(** Alive2-style diagnostic messages: the verdict texts and counterexample
    renderings that double as training feedback. *)

type kind =
  | Target_ub
  | Target_more_poisonous
  | Value_mismatch
  | Domain_mismatch
  | Trace_mismatch
  | Memory_mismatch
  | Other

val kind_to_string : kind -> string

val classify : Veriopt_smt.Solver.model -> Encode.summary -> Encode.summary -> kind

val example_inputs : Veriopt_smt.Solver.model -> Encode.summary -> (string * int64) list

val render_counterexample :
  Veriopt_smt.Solver.model -> Encode.summary -> Encode.summary -> string

val syntax_error_message : string -> string
val inconclusive_message : string -> string
val equivalent_message : bounded:bool -> string

(** Bounded loop unrolling for translation validation (Alive2-style): clone
    the body [k] times, redirect back edges forward, route the last copy's
    back edges to a distinguished bound-exhausted block. *)

val exhausted_label : Veriopt_ir.Ast.label
(** Reaching this block means execution left the validated bound (not UB). *)

val unroll : int -> Veriopt_ir.Ast.func -> Veriopt_ir.Ast.func
(** Returns an acyclic function; the identity on loop-free input.  The
    result is for the encoder only: clones of before-loop blocks duplicate
    definitions but are unreachable. *)

lib/core/report.mli: Evaluate Format Veriopt_data Veriopt_rl

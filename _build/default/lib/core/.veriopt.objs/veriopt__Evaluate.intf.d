lib/core/evaluate.mli: Veriopt_data Veriopt_ir Veriopt_llm

lib/core/pipeline.mli: Veriopt_data Veriopt_llm Veriopt_rl

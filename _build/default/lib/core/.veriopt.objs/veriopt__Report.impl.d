lib/core/report.ml: Array Evaluate Fmt List Veriopt_data Veriopt_ir Veriopt_llm Veriopt_rl

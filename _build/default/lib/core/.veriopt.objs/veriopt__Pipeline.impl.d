lib/core/pipeline.ml: List Veriopt_data Veriopt_llm Veriopt_rl

lib/core/evaluate.ml: Ast List Veriopt_alive Veriopt_cost Veriopt_data Veriopt_ir Veriopt_llm Veriopt_rl

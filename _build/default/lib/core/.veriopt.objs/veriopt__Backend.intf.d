lib/core/backend.mli: Veriopt_alive Veriopt_ir Veriopt_llm

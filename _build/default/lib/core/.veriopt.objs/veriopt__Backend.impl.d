lib/core/backend.ml: Ast Hashtbl List Printer Veriopt_alive Veriopt_cost Veriopt_ir Veriopt_llm Veriopt_passes Veriopt_rl

(** Verified-fallback deployment: because the model transforms IR to IR,
    every output can be formally checked and the original kept on failure —
    the LLM never has to be trusted (the paper's key safety stance). *)

type outcome = {
  output : Veriopt_ir.Ast.func;  (** always safe to use *)
  used_model : bool;  (** false = fell back to the input *)
  verdict : Veriopt_alive.Alive.verdict;
  completion : string;  (** the raw model completion, for inspection *)
}

val optimize :
  ?mode:Veriopt_llm.Prompt.mode ->
  ?max_conflicts:int ->
  Veriopt_llm.Model.t ->
  Veriopt_ir.Ast.modul ->
  Veriopt_ir.Ast.func ->
  outcome
(** Greedy-decode, verify, fall back. *)

val optimize_best_of_both :
  ?mode:Veriopt_llm.Prompt.mode ->
  ?max_conflicts:int ->
  Veriopt_llm.Model.t ->
  Veriopt_ir.Ast.modul ->
  Veriopt_ir.Ast.func ->
  Veriopt_ir.Ast.func * outcome
(** Keep whichever of {model output, handwritten instcombine} has the lower
    modelled latency — the paper's "net gain over instcombine alone". *)

val optimize_module :
  ?mode:Veriopt_llm.Prompt.mode ->
  ?max_conflicts:int ->
  Veriopt_llm.Model.t ->
  Veriopt_ir.Ast.modul ->
  Veriopt_ir.Ast.modul * outcome list

(** IR well-formedness checker: type rules + SSA dominance.

    Model output that parses but fails here is still "invalid IR" in the
    paper's Table I/II sense, so the checks are deliberately strict and the
    messages are written to be useful as training diagnostics. *)

open Ast
module SMap = Map.Make (String)

type error = string

let check_operand_type env ~what (expected : Types.t) (op : operand) : error list =
  match op with
  | Var v -> (
    match SMap.find_opt v env with
    | None -> [ Fmt.str "%s: use of undefined value %%%s" what v ]
    | Some t when Types.equal t expected -> []
    | Some t ->
      [ Fmt.str "%s: %%%s has type %s but %s was expected" what v (Types.to_string t)
          (Types.to_string expected) ])
  | Const (CInt { width; _ }) -> (
    match expected with
    | Types.Int w when w = width -> []
    | _ -> [ Fmt.str "%s: i%d constant used where %s expected" what width (Types.to_string expected) ])
  | Const CNull | Global _ ->
    if Types.equal expected Types.Ptr then []
    else [ Fmt.str "%s: pointer constant used where %s expected" what (Types.to_string expected) ]
  | Const (CUndef t) | Const (CPoison t) ->
    if Types.equal t expected then []
    else
      [ Fmt.str "%s: undef/poison of type %s used where %s expected" what (Types.to_string t)
          (Types.to_string expected) ]

let check_instr env ~what (i : instr) : error list =
  let op = check_operand_type env ~what in
  match i with
  | Binop { ty; lhs; rhs; _ } ->
    (if Types.is_integer ty then [] else [ Fmt.str "%s: binop at non-integer type" what ])
    @ op ty lhs @ op ty rhs
  | Icmp { ty; lhs; rhs; _ } ->
    (match ty with
    | Types.Int _ | Types.Ptr -> []
    | _ -> [ Fmt.str "%s: icmp at non-integer, non-pointer type" what ])
    @ op ty lhs @ op ty rhs
  | Select { ty; cond; if_true; if_false } ->
    (if Types.is_first_class ty then [] else [ Fmt.str "%s: select of non-first-class type" what ])
    @ op Types.i1 cond @ op ty if_true @ op ty if_false
  | Cast { op = cop; src_ty; value; dst_ty } ->
    let structural =
      match (cop, src_ty, dst_ty) with
      | Trunc, Types.Int a, Types.Int b when a > b -> []
      | (ZExt | SExt), Types.Int a, Types.Int b when a < b -> []
      | PtrToInt, Types.Ptr, Types.Int _ -> []
      | IntToPtr, Types.Int _, Types.Ptr -> []
      | Bitcast, Types.Int a, Types.Int b when a = b -> []
      | Bitcast, Types.Ptr, Types.Ptr -> []
      | _ ->
        [ Fmt.str "%s: invalid %s from %s to %s" what (string_of_cast_op cop)
            (Types.to_string src_ty) (Types.to_string dst_ty) ]
    in
    structural @ op src_ty value
  | Alloca { ty; align } ->
    (if Types.size_in_bytes ty > 0 then [] else [ Fmt.str "%s: alloca of empty type" what ])
    @ if align >= 1 then [] else [ Fmt.str "%s: invalid alignment" what ]
  | Load { ty; ptr; _ } ->
    (if Types.is_first_class ty then [] else [ Fmt.str "%s: load of non-first-class type" what ])
    @ op Types.Ptr ptr
  | Store { ty; value; ptr; _ } ->
    (if Types.is_first_class ty then [] else [ Fmt.str "%s: store of non-first-class type" what ])
    @ op ty value @ op Types.Ptr ptr
  | Gep { ptr; indices; _ } ->
    op Types.Ptr ptr
    @ List.concat_map
        (fun (t, o) ->
          match t with
          | Types.Int _ -> op t o
          | _ -> [ Fmt.str "%s: gep index of non-integer type" what ])
        indices
  | Phi { ty; incoming } ->
    (if incoming = [] then [ Fmt.str "%s: phi with no incoming values" what ] else [])
    @ List.concat_map (fun (o, _) -> op ty o) incoming
  | Call _ -> [] (* checked against declarations separately *)
  | Freeze { ty; value } -> op ty value

let check_terminator env ~what ~labels (t : terminator) : error list =
  let op = check_operand_type env ~what in
  let target l =
    if List.mem l labels then [] else [ Fmt.str "%s: branch to unknown block %%%s" what l ]
  in
  match t with
  | Ret None -> []
  | Ret (Some (ty, v)) -> op ty v
  | Br l -> target l
  | CondBr { cond; if_true; if_false } -> op Types.i1 cond @ target if_true @ target if_false
  | Switch { ty; value; default; cases } ->
    op ty value @ target default @ List.concat_map (fun (_, l) -> target l) cases
  | Unreachable -> []

(* Collect the set of definitions; duplicate names are an SSA violation. *)
let collect_defs (f : func) : Types.t SMap.t * error list =
  let errors = ref [] in
  let env = ref SMap.empty in
  let define name ty where =
    if SMap.mem name !env then
      errors := Fmt.str "%s: multiple definitions of %%%s" where name :: !errors
    else env := SMap.add name ty !env
  in
  List.iter (fun (ty, v) -> define v ty "parameters") f.params;
  List.iter
    (fun b ->
      List.iter
        (fun { name; instr } ->
          match (name, instr_result_type instr) with
          | Some n, Some ty -> define n ty ("block %" ^ b.label)
          | Some n, None ->
            errors := Fmt.str "block %%%s: %%%s names a void instruction" b.label n :: !errors
          | None, Some _ -> (
            match instr with
            | Call _ -> () (* discarding a call result is fine *)
            | _ -> errors := Fmt.str "block %%%s: unnamed instruction result" b.label :: !errors)
          | None, None -> ())
        b.instrs)
    f.blocks;
  (!env, List.rev !errors)

(* def site of each variable: block label and instruction index; parameters
   are index -1 in the entry block. *)
let def_sites (f : func) =
  let sites = Hashtbl.create 32 in
  let entry = (entry_block f).label in
  List.iter (fun (_, v) -> Hashtbl.replace sites v (entry, -1)) f.params;
  List.iter
    (fun b ->
      List.iteri
        (fun i { name; _ } ->
          match name with Some n -> Hashtbl.replace sites n (b.label, i) | None -> ())
        b.instrs)
    f.blocks;
  sites

let check_dominance (f : func) (cfg : Cfg.t) : error list =
  let sites = def_sites f in
  let errors = ref [] in
  let dominates_use ~def_block ~def_index ~use_block ~use_index =
    if def_block = use_block then def_index < use_index
    else Cfg.is_reachable cfg def_block && Cfg.is_reachable cfg use_block
         && Cfg.dominates cfg def_block use_block
  in
  let check_use ~use_block ~use_index ~what op =
    match op with
    | Var v -> (
      match Hashtbl.find_opt sites v with
      | None -> () (* reported as undefined by type checking *)
      | Some (def_block, def_index) ->
        if
          Cfg.is_reachable cfg use_block
          && not (dominates_use ~def_block ~def_index ~use_block ~use_index)
        then errors := Fmt.str "%s: definition of %%%s does not dominate this use" what v :: !errors)
    | Const _ | Global _ -> ()
  in
  List.iter
    (fun b ->
      List.iteri
        (fun i { instr; name } ->
          let what =
            Fmt.str "block %%%s%s" b.label
              (match name with Some n -> ", %" ^ n | None -> "")
          in
          match instr with
          | Phi { incoming; _ } ->
            (* A phi use must dominate the end of the incoming block. *)
            List.iter
              (fun (op, from) ->
                match op with
                | Var v -> (
                  match Hashtbl.find_opt sites v with
                  | None -> ()
                  | Some (def_block, _) ->
                    if
                      Cfg.is_reachable cfg from
                      && not
                           (def_block = from
                           || (Cfg.is_reachable cfg def_block && Cfg.dominates cfg def_block from))
                    then
                      errors :=
                        Fmt.str "%s: phi incoming %%%s does not dominate predecessor %%%s" what v
                          from
                        :: !errors)
                | Const _ | Global _ -> ())
              incoming
          | _ ->
            List.iter (check_use ~use_block:b.label ~use_index:i ~what) (operands_of_instr instr))
        b.instrs;
      List.iter
        (check_use ~use_block:b.label ~use_index:max_int ~what:(Fmt.str "block %%%s terminator" b.label))
        (operands_of_terminator b.term))
    f.blocks;
  List.rev !errors

let check_phi_placement (f : func) (cfg : Cfg.t) : error list =
  let errors = ref [] in
  List.iter
    (fun b ->
      (* phis must be a prefix of the block *)
      let seen_non_phi = ref false in
      List.iter
        (fun { instr; _ } ->
          match instr with
          | Phi { incoming; _ } ->
            if !seen_non_phi then
              errors := Fmt.str "block %%%s: phi after non-phi instruction" b.label :: !errors;
            if Cfg.is_reachable cfg b.label then (
              let preds = List.sort_uniq compare (Cfg.predecessors cfg b.label) in
              let froms = List.sort_uniq compare (List.map snd incoming) in
              if preds <> froms then
                errors :=
                  Fmt.str "block %%%s: phi incoming blocks {%s} do not match predecessors {%s}"
                    b.label (String.concat ", " froms) (String.concat ", " preds)
                  :: !errors)
          | _ -> seen_non_phi := true)
        b.instrs)
    f.blocks;
  (match f.blocks with
  | b :: _ ->
    List.iter
      (fun { instr; _ } ->
        match instr with
        | Phi _ -> errors := "entry block must not contain phi instructions" :: !errors
        | _ -> ())
      b.instrs
  | [] -> errors := "function has no blocks" :: !errors);
  List.rev !errors

let check_calls (m : modul option) (f : func) : error list =
  match m with
  | None -> []
  | Some m ->
    List.concat_map
      (fun b ->
        List.concat_map
          (fun { instr; _ } ->
            match instr with
            | Call { ret_ty; callee; args } -> (
              match (find_decl m callee, find_func m callee) with
              | None, None -> [ Fmt.str "call to undeclared function @%s" callee ]
              | Some d, _ ->
                (if Types.equal d.dret_ty ret_ty then []
                 else [ Fmt.str "call to @%s: return type mismatch" callee ])
                @
                if List.length d.dparams <> List.length args then
                  [ Fmt.str "call to @%s: arity mismatch" callee ]
                else
                  List.concat
                    (List.map2
                       (fun dt (at, _) ->
                         if Types.equal dt at then []
                         else [ Fmt.str "call to @%s: argument type mismatch" callee ])
                       d.dparams args)
              | None, Some g ->
                if Types.equal g.ret_ty ret_ty && List.length g.params = List.length args then []
                else [ Fmt.str "call to @%s: signature mismatch" callee ])
            | _ -> [])
          b.instrs)
      f.blocks

(** Validate a function.  [module_] supplies call-target signatures and
    global names when available. *)
let validate_func ?module_ (f : func) : (unit, error list) result =
  if f.blocks = [] then Error [ "function has no blocks" ]
  else
    let labels = List.map (fun b -> b.label) f.blocks in
    let dup_labels =
      List.filter (fun l -> List.length (List.filter (( = ) l) labels) > 1) labels
      |> List.sort_uniq compare
    in
    if dup_labels <> [] then
      Error (List.map (fun l -> Fmt.str "duplicate block label %%%s" l) dup_labels)
    else
      let env, def_errors = collect_defs f in
      let ret_errors =
        List.concat_map
          (fun b ->
            match (b.term, f.ret_ty) with
            | Ret None, Types.Void -> []
            | Ret None, _ -> [ Fmt.str "block %%%s: ret void in non-void function" b.label ]
            | Ret (Some (ty, _)), rt when not (Types.equal ty rt) ->
              [ Fmt.str "block %%%s: ret type does not match function type" b.label ]
            | _ -> [])
          f.blocks
      in
      let type_errors =
        List.concat_map
          (fun b ->
            List.concat_map
              (fun { name; instr } ->
                let what =
                  Fmt.str "block %%%s%s" b.label
                    (match name with Some n -> ", %" ^ n | None -> "")
                in
                check_instr env ~what instr)
              b.instrs
            @ check_terminator env ~what:(Fmt.str "block %%%s terminator" b.label) ~labels b.term)
          f.blocks
      in
      let structural = def_errors @ ret_errors @ type_errors in
      if structural <> [] then Error structural
      else
        let cfg = Cfg.of_func f in
        let errors =
          check_phi_placement f cfg @ check_dominance f cfg @ check_calls module_ f
        in
        if errors = [] then Ok () else Error errors

let validate_module (m : modul) : (unit, error list) result =
  let errors =
    List.concat_map
      (fun f -> match validate_func ~module_:m f with Ok () -> [] | Error es ->
        List.map (fun e -> Fmt.str "@%s: %s" f.fname e) es)
      m.funcs
  in
  if errors = [] then Ok () else Error errors

(** Control-flow graph utilities: successor/predecessor maps, reverse
    postorder, dominators (Cooper–Harvey–Kennedy), and back-edge detection. *)

open Ast

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  func : func;
  block_of : block SMap.t;
  succs : label list SMap.t;
  preds : label list SMap.t;
  rpo : label array; (* reverse postorder over reachable blocks, entry first *)
  rpo_index : int SMap.t;
  idom : label SMap.t; (* immediate dominator; entry maps to itself *)
}

let block_exn t l =
  match SMap.find_opt l t.block_of with
  | Some b -> b
  | None -> invalid_arg (Fmt.str "Cfg.block_exn: unknown block %%%s" l)

let successors t l = try SMap.find l t.succs with Not_found -> []
let predecessors t l = try SMap.find l t.preds with Not_found -> []

let compute_rpo entry succs_of =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then (
      Hashtbl.add visited l ();
      List.iter dfs (succs_of l);
      order := l :: !order)
  in
  dfs entry;
  Array.of_list !order

let compute_idom ~entry ~rpo ~rpo_index ~preds_of =
  (* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm". *)
  let n = Array.length rpo in
  let idom = Array.make n (-1) in
  let index l = SMap.find l rpo_index in
  idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do
        a := idom.(!a)
      done;
      while !b > !a do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let preds =
        List.filter_map
          (fun p -> match SMap.find_opt p rpo_index with Some j -> Some j | None -> None)
          (preds_of rpo.(i))
      in
      let processed = List.filter (fun j -> idom.(j) >= 0) preds in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left (fun acc j -> intersect acc j) first rest in
        if idom.(i) <> new_idom then (
          idom.(i) <- new_idom;
          changed := true)
    done
  done;
  ignore entry;
  ignore index;
  Array.to_seq rpo
  |> Seq.mapi (fun i l -> (l, rpo.(max 0 idom.(i))))
  |> SMap.of_seq

let of_func (f : func) : t =
  let block_of = List.fold_left (fun m b -> SMap.add b.label b m) SMap.empty f.blocks in
  let succs =
    List.fold_left (fun m b -> SMap.add b.label (Ast.successors b.term) m) SMap.empty f.blocks
  in
  let preds =
    List.fold_left
      (fun m b ->
        List.fold_left
          (fun m s ->
            let cur = try SMap.find s m with Not_found -> [] in
            SMap.add s (cur @ [ b.label ]) m)
          m (Ast.successors b.term))
      (List.fold_left (fun m b -> SMap.add b.label [] m) SMap.empty f.blocks)
      f.blocks
  in
  let entry = (entry_block f).label in
  let rpo = compute_rpo entry (fun l -> try SMap.find l succs with Not_found -> []) in
  let rpo_index =
    Array.to_seq rpo |> Seq.mapi (fun i l -> (l, i)) |> SMap.of_seq
  in
  let idom =
    compute_idom ~entry ~rpo ~rpo_index ~preds_of:(fun l ->
        try SMap.find l preds with Not_found -> [])
  in
  { func = f; block_of; succs; preds; rpo; rpo_index; idom }

let is_reachable t l = SMap.mem l t.rpo_index

(** [dominates t a b]: every path from entry to [b] passes through [a].
    Both blocks must be reachable. *)
let dominates t a b =
  let rec walk l = if l = a then true else if l = (t.rpo).(0) then false else walk (SMap.find l t.idom) in
  walk b

(** Back edges [(src, dst)] where [dst] dominates [src]: loop indicators. *)
let back_edges t =
  Array.to_list t.rpo
  |> List.concat_map (fun l ->
         successors t l
         |> List.filter_map (fun s ->
                if is_reachable t s && dominates t s l then Some (l, s) else None))

let has_loop t = back_edges t <> []

(** Blocks in reverse postorder (entry first), as [block] values. *)
let blocks_rpo t = Array.to_list t.rpo |> List.map (fun l -> block_exn t l)

(** Bit-precise arithmetic at widths 1..64.

    Values are carried in [int64] in a canonical unsigned form: all bits above
    the width are zero.  Every operation takes the width [w] first.  Semantics
    follow the LLVM language reference; operations that can produce poison or
    trigger UB expose the corresponding overflow predicates so callers
    (interpreter, verifier encoder, instcombine) share one source of truth. *)

let mask w x =
  if w >= 64 then x else Int64.logand x (Int64.sub (Int64.shift_left 1L w) 1L)

(** Sign-extend a canonical [w]-bit value to a full [int64]. *)
let to_signed w x =
  if w >= 64 then x
  else
    let sign_bit = Int64.shift_left 1L (w - 1) in
    if Int64.logand x sign_bit <> 0L then
      Int64.logor x (Int64.lognot (Int64.sub (Int64.shift_left 1L w) 1L))
    else x

let of_int w x = mask w (Int64.of_int x)
let to_unsigned _w x = x

let min_signed w = mask w (Int64.shift_left 1L (w - 1))
let max_signed w = mask w (Int64.sub (Int64.shift_left 1L (w - 1)) 1L)
let all_ones w = mask w Int64.minus_one

let add w a b = mask w (Int64.add a b)
let sub w a b = mask w (Int64.sub a b)
let mul w a b = mask w (Int64.mul a b)
let neg w a = mask w (Int64.neg a)
let logand _w a b = Int64.logand a b
let logor _w a b = Int64.logor a b
let logxor _w a b = Int64.logxor a b
let lognot w a = mask w (Int64.lognot a)

(** Unsigned division; division by zero is the caller's UB to detect. *)
let udiv w a b = mask w (Int64.unsigned_div a b)

let urem w a b = mask w (Int64.unsigned_rem a b)

(** Signed division truncating toward zero.  The caller must rule out
    [b = 0] and [a = min_signed && b = -1] (both UB in LLVM). *)
let sdiv w a b = mask w (Int64.div (to_signed w a) (to_signed w b))

let srem w a b = mask w (Int64.rem (to_signed w a) (to_signed w b))

(** Shifts: a shift amount [>= w] yields poison in LLVM; callers check
    [shift_amount_poison] first.  We still return a defined value (0) so the
    interpreter's poison bookkeeping stays separate from the raw arithmetic. *)
let shl w a s =
  let s = Int64.to_int s in
  if s >= w || s < 0 then 0L else mask w (Int64.shift_left a s)

let lshr w a s =
  let s = Int64.to_int s in
  if s >= w || s < 0 then 0L else mask w (Int64.shift_right_logical (mask w a) s)

let ashr w a s =
  let s = Int64.to_int s in
  if s >= w || s < 0 then 0L else mask w (Int64.shift_right (to_signed w a) s)

let shift_amount_poison w s = Int64.unsigned_compare s (Int64.of_int w) >= 0

let ult _w a b = Int64.unsigned_compare a b < 0
let ule _w a b = Int64.unsigned_compare a b <= 0
let slt w a b = Int64.compare (to_signed w a) (to_signed w b) < 0
let sle w a b = Int64.compare (to_signed w a) (to_signed w b) <= 0

(* Overflow predicates for the nsw/nuw/exact poison flags. *)

let add_nuw_overflow w a b = ult w (add w a b) a

let add_nsw_overflow w a b =
  let r = add w a b in
  let sa = to_signed w a and sb = to_signed w b and sr = to_signed w r in
  (sa >= 0L && sb >= 0L && sr < 0L) || (sa < 0L && sb < 0L && sr >= 0L)

let sub_nuw_overflow w a b = ult w a b

let sub_nsw_overflow w a b =
  let r = sub w a b in
  let sa = to_signed w a and sb = to_signed w b and sr = to_signed w r in
  (sa >= 0L && sb < 0L && sr < 0L) || (sa < 0L && sb >= 0L && sr >= 0L)

(* Overflow iff the true unsigned product exceeds [all_ones w]; checked as
   [b > (2^w - 1) / a] so it is exact even at width 64. *)
let mul_nuw_overflow w a b =
  a <> 0L && Int64.unsigned_compare b (Int64.unsigned_div (all_ones w) a) > 0

(* If no overflow, dividing the wrapped product by [b] recovers [a]; if
   overflow, it cannot (|b| <= 2^(w-1) < k * 2^w).  The [b = -1] and [a = -1]
   cases are split out so [sdiv] never sees the min/-1 trap. *)
let mul_nsw_overflow w a b =
  if a = 0L || b = 0L then false
  else if b = all_ones w then a = min_signed w
  else if a = all_ones w then b = min_signed w
  else to_signed w (sdiv w (mul w a b) b) <> to_signed w a

let shl_nuw_overflow w a s =
  shift_amount_poison w s || lshr w (shl w a s) s <> mask w a

let shl_nsw_overflow w a s =
  shift_amount_poison w s || to_signed w (ashr w (shl w a s) s) <> to_signed w a

let udiv_exact_violation w a b = b <> 0L && urem w a b <> 0L
let sdiv_exact_violation w a b = b <> 0L && srem w a b <> 0L
let lshr_exact_violation w a s = (not (shift_amount_poison w s)) && shl w (lshr w a s) s <> a
let ashr_exact_violation w a s = (not (shift_amount_poison w s)) && shl w (ashr w a s) s <> a

let sdiv_overflow w a b = a = min_signed w && b = all_ones w

let trunc w_from w_to a =
  ignore w_from;
  mask w_to a

let zext _w_from _w_to a = a
let sext w_from w_to a = mask w_to (to_signed w_from a)

let is_power_of_two w a = a <> 0L && logand w a (sub w a 1L) = 0L

let log2 w a =
  let rec go i = if i >= w then -1 else if shl w 1L (Int64.of_int i) = a then i else go (i + 1) in
  go 0

let popcount _w a =
  let rec go acc x = if x = 0L then acc else go (acc + 1) (Int64.logand x (Int64.sub x 1L)) in
  go 0 a

let bit w a i = if i < 0 || i >= w then false else Int64.logand (Int64.shift_right_logical a i) 1L = 1L

let to_hex_string w a = Fmt.str "0x%Lx" (mask w a)

(** Bit-precise arithmetic at widths 1..64.

    Values are carried in [int64] in canonical unsigned form (bits above the
    width are zero).  Every operation takes the width first.  The overflow
    and poison predicates here are the single source of truth shared by the
    interpreter, the constant folder, the verifier encoder and the rule
    catalog. *)

val mask : int -> int64 -> int64
(** Canonicalize to [w] bits. *)

val to_signed : int -> int64 -> int64
(** Sign-extend a canonical [w]-bit value to a full [int64]. *)

val of_int : int -> int -> int64
val to_unsigned : int -> int64 -> int64

val min_signed : int -> int64
val max_signed : int -> int64
val all_ones : int -> int64

(** {1 Wrapping arithmetic} *)

val add : int -> int64 -> int64 -> int64
val sub : int -> int64 -> int64 -> int64
val mul : int -> int64 -> int64 -> int64
val neg : int -> int64 -> int64
val logand : int -> int64 -> int64 -> int64
val logor : int -> int64 -> int64 -> int64
val logxor : int -> int64 -> int64 -> int64
val lognot : int -> int64 -> int64

val udiv : int -> int64 -> int64 -> int64
(** Unsigned division; division by zero is the caller's UB to rule out. *)

val urem : int -> int64 -> int64 -> int64

val sdiv : int -> int64 -> int64 -> int64
(** Signed division truncating toward zero.  The caller must rule out
    [b = 0] and the [min_signed / -1] overflow (both UB in LLVM). *)

val srem : int -> int64 -> int64 -> int64

val shl : int -> int64 -> int64 -> int64
val lshr : int -> int64 -> int64 -> int64
val ashr : int -> int64 -> int64 -> int64

val shift_amount_poison : int -> int64 -> bool
(** A shift amount [>= w] makes the shift's result poison in LLVM. *)

(** {1 Comparisons} *)

val ult : int -> int64 -> int64 -> bool
val ule : int -> int64 -> int64 -> bool
val slt : int -> int64 -> int64 -> bool
val sle : int -> int64 -> int64 -> bool

(** {1 Flag-violation predicates (nsw / nuw / exact)} *)

val add_nuw_overflow : int -> int64 -> int64 -> bool
val add_nsw_overflow : int -> int64 -> int64 -> bool
val sub_nuw_overflow : int -> int64 -> int64 -> bool
val sub_nsw_overflow : int -> int64 -> int64 -> bool
val mul_nuw_overflow : int -> int64 -> int64 -> bool
val mul_nsw_overflow : int -> int64 -> int64 -> bool
val shl_nuw_overflow : int -> int64 -> int64 -> bool
val shl_nsw_overflow : int -> int64 -> int64 -> bool
val udiv_exact_violation : int -> int64 -> int64 -> bool
val sdiv_exact_violation : int -> int64 -> int64 -> bool
val lshr_exact_violation : int -> int64 -> int64 -> bool
val ashr_exact_violation : int -> int64 -> int64 -> bool

val sdiv_overflow : int -> int64 -> int64 -> bool
(** [min_signed / -1]: immediate UB for sdiv/srem. *)

(** {1 Casts and bit queries} *)

val trunc : int -> int -> int64 -> int64
val zext : int -> int -> int64 -> int64
val sext : int -> int -> int64 -> int64

val is_power_of_two : int -> int64 -> bool
val log2 : int -> int64 -> int
val popcount : int -> int64 -> int
val bit : int -> int64 -> int -> bool
val to_hex_string : int -> int64 -> string

(** Recursive-descent parser for the `.ll`-style textual IR.

    Accepts both our canonical output (opaque [ptr]) and the clang-era syntax
    that appears in the paper's figures: typed pointers ([i64*]), numeric
    block labels, [dso_local]/[noundef]/[#N] attributes, and named struct
    types ([%struct.S = type {...}]). *)

open Ast

exception Error of { line : int; message : string }

let fail lx message = raise (Error { line = Lexer.line lx; message })

let failf lx fmt = Fmt.kstr (fail lx) fmt

type env = { lx : Lexer.t; mutable type_aliases : (string * Types.t) list }

let expect env tok what =
  let got = Lexer.next env.lx in
  if got <> tok then failf env.lx "expected %s, got '%s'" what (Lexer.token_to_string got)

let expect_word env w =
  match Lexer.next env.lx with
  | Lexer.WORD s when s = w -> ()
  | got -> failf env.lx "expected '%s', got '%s'" w (Lexer.token_to_string got)

(* Attribute words that carry no semantics in our subset. *)
let skippable_word = function
  | "dso_local" | "local_unnamed_addr" | "noundef" | "nonnull" | "nocapture" | "zeroext"
  | "signext" | "nounwind" | "willreturn" ->
    true
  | w -> String.length w > 0 && w.[0] = '#'

let rec skip_attrs env =
  match Lexer.peek env.lx with
  | Lexer.WORD w when skippable_word w ->
    Lexer.advance env.lx;
    skip_attrs env
  | _ -> ()

let int_type_of_word w =
  if String.length w >= 2 && w.[0] = 'i' then
    match int_of_string_opt (String.sub w 1 (String.length w - 1)) with
    | Some n when n >= 1 && n <= 64 -> Some (Types.Int n)
    | Some _ | None -> None
  else None

let rec parse_base_type env =
  match Lexer.next env.lx with
  | Lexer.WORD "ptr" -> Types.Ptr
  | Lexer.WORD "void" -> Types.Void
  | Lexer.WORD w -> (
    match int_type_of_word w with
    | Some t -> t
    | None -> failf env.lx "unknown type '%s'" w)
  | Lexer.LBRACKET ->
    let n =
      match Lexer.next env.lx with
      | Lexer.INT v -> Int64.to_int v
      | t -> failf env.lx "expected array length, got '%s'" (Lexer.token_to_string t)
    in
    expect_word env "x";
    let elt = parse_type env in
    expect env Lexer.RBRACKET "']'";
    Types.Array (n, elt)
  | Lexer.LBRACE ->
    let rec fields acc =
      let t = parse_type env in
      match Lexer.next env.lx with
      | Lexer.COMMA -> fields (t :: acc)
      | Lexer.RBRACE -> List.rev (t :: acc)
      | tok -> failf env.lx "expected ',' or '}' in struct type, got '%s'" (Lexer.token_to_string tok)
    in
    Types.Struct (fields [])
  | Lexer.LOCAL name -> (
    match List.assoc_opt name env.type_aliases with
    | Some t -> t
    | None -> failf env.lx "unknown named type '%%%s'" name)
  | tok -> failf env.lx "expected a type, got '%s'" (Lexer.token_to_string tok)

(* A base type followed by '*'s is a legacy typed pointer; we erase it to the
   opaque [ptr]. *)
and parse_type env =
  let t = parse_base_type env in
  let rec stars t =
    match Lexer.peek env.lx with
    | Lexer.STAR ->
      Lexer.advance env.lx;
      ignore t;
      stars Types.Ptr
    | _ -> t
  in
  stars t

let parse_operand env (ty : Types.t) =
  skip_attrs env;
  match Lexer.next env.lx with
  | Lexer.LOCAL v -> Var v
  | Lexer.GLOBAL g -> Global g
  | Lexer.INT v -> (
    match ty with
    | Types.Int w -> Const (CInt { width = w; value = Bits.mask w v })
    | _ -> failf env.lx "integer literal used at non-integer type %s" (Types.to_string ty))
  | Lexer.WORD "true" -> const_bool true
  | Lexer.WORD "false" -> const_bool false
  | Lexer.WORD "null" -> Const CNull
  | Lexer.WORD "undef" -> Const (CUndef ty)
  | Lexer.WORD "poison" -> Const (CPoison ty)
  | tok -> failf env.lx "expected an operand, got '%s'" (Lexer.token_to_string tok)

let parse_typed_operand env =
  let ty = parse_type env in
  let op = parse_operand env ty in
  (ty, op)

let binop_of_word = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "udiv" -> Some UDiv
  | "sdiv" -> Some SDiv
  | "urem" -> Some URem
  | "srem" -> Some SRem
  | "shl" -> Some Shl
  | "lshr" -> Some LShr
  | "ashr" -> Some AShr
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | _ -> None

let icmp_pred_of_word = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "ugt" -> Some Ugt
  | "uge" -> Some Uge
  | "ult" -> Some Ult
  | "ule" -> Some Ule
  | "sgt" -> Some Sgt
  | "sge" -> Some Sge
  | "slt" -> Some Slt
  | "sle" -> Some Sle
  | _ -> None

let cast_of_word = function
  | "trunc" -> Some Trunc
  | "zext" -> Some ZExt
  | "sext" -> Some SExt
  | "ptrtoint" -> Some PtrToInt
  | "inttoptr" -> Some IntToPtr
  | "bitcast" -> Some Bitcast
  | _ -> None

let parse_flags env op =
  let nsw = ref false and nuw = ref false and exact = ref false in
  let rec go () =
    match Lexer.peek env.lx with
    | Lexer.WORD "nsw" ->
      Lexer.advance env.lx;
      nsw := true;
      go ()
    | Lexer.WORD "nuw" ->
      Lexer.advance env.lx;
      nuw := true;
      go ()
    | Lexer.WORD "exact" ->
      Lexer.advance env.lx;
      exact := true;
      go ()
    | _ -> ()
  in
  go ();
  (match op with
  | Add | Sub | Mul | Shl ->
    if !exact then fail env.lx "'exact' is not valid on this opcode"
  | UDiv | SDiv | LShr | AShr ->
    if !nsw || !nuw then fail env.lx "'nsw'/'nuw' is not valid on this opcode"
  | URem | SRem | And | Or | Xor ->
    if !nsw || !nuw || !exact then fail env.lx "flags are not valid on this opcode");
  { nsw = !nsw; nuw = !nuw; exact = !exact }

let parse_align_suffix env ~default =
  match Lexer.peek env.lx with
  | Lexer.COMMA -> (
    Lexer.advance env.lx;
    expect_word env "align";
    match Lexer.next env.lx with
    | Lexer.INT v -> Int64.to_int v
    | tok -> failf env.lx "expected alignment, got '%s'" (Lexer.token_to_string tok))
  | _ -> default

(* 'load T, ptr %p' and legacy 'load T, T* %p'. *)
let parse_pointer_operand env =
  let ty = parse_type env in
  if not (Types.equal ty Types.Ptr) then fail env.lx "expected a pointer operand";
  parse_operand env Types.Ptr

let parse_instr_body env (word : string) : instr =
  match binop_of_word word with
  | Some op ->
    let flags = parse_flags env op in
    let ty = parse_type env in
    if not (Types.is_integer ty) then fail env.lx "binary operators require an integer type";
    let lhs = parse_operand env ty in
    expect env Lexer.COMMA "','";
    let rhs = parse_operand env ty in
    Binop { op; flags; ty; lhs; rhs }
  | None -> (
    match cast_of_word word with
    | Some op ->
      let src_ty = parse_type env in
      let value = parse_operand env src_ty in
      expect_word env "to";
      let dst_ty = parse_type env in
      Cast { op; src_ty; value; dst_ty }
    | None -> (
      match word with
      | "icmp" ->
        let pred =
          match Lexer.next env.lx with
          | Lexer.WORD w -> (
            match icmp_pred_of_word w with
            | Some p -> p
            | None -> failf env.lx "unknown icmp predicate '%s'" w)
          | tok -> failf env.lx "expected icmp predicate, got '%s'" (Lexer.token_to_string tok)
        in
        let ty = parse_type env in
        let lhs = parse_operand env ty in
        expect env Lexer.COMMA "','";
        let rhs = parse_operand env ty in
        Icmp { pred; ty; lhs; rhs }
      | "select" ->
        let cond_ty = parse_type env in
        if not (Types.equal cond_ty Types.i1) then fail env.lx "select condition must be i1";
        let cond = parse_operand env Types.i1 in
        expect env Lexer.COMMA "','";
        let ty = parse_type env in
        let if_true = parse_operand env ty in
        expect env Lexer.COMMA "','";
        let ty2 = parse_type env in
        if not (Types.equal ty ty2) then fail env.lx "select arms have different types";
        let if_false = parse_operand env ty in
        Select { ty; cond; if_true; if_false }
      | "alloca" ->
        let ty = parse_type env in
        let align = parse_align_suffix env ~default:(max 1 (Types.size_in_bytes ty)) in
        Alloca { ty; align }
      | "load" ->
        let ty = parse_type env in
        expect env Lexer.COMMA "','";
        let ptr = parse_pointer_operand env in
        let align = parse_align_suffix env ~default:(max 1 (Types.size_in_bytes ty)) in
        Load { ty; ptr; align }
      | "store" ->
        let ty = parse_type env in
        let value = parse_operand env ty in
        expect env Lexer.COMMA "','";
        let ptr = parse_pointer_operand env in
        let align = parse_align_suffix env ~default:(max 1 (Types.size_in_bytes ty)) in
        Store { ty; value; ptr; align }
      | "getelementptr" ->
        let inbounds =
          match Lexer.peek env.lx with
          | Lexer.WORD "inbounds" ->
            Lexer.advance env.lx;
            true
          | _ -> false
        in
        let base_ty = parse_type env in
        expect env Lexer.COMMA "','";
        let ptr = parse_pointer_operand env in
        let rec indices acc =
          match Lexer.peek env.lx with
          | Lexer.COMMA ->
            Lexer.advance env.lx;
            indices (parse_typed_operand env :: acc)
          | _ -> List.rev acc
        in
        Gep { base_ty; ptr; indices = indices []; inbounds }
      | "phi" ->
        let ty = parse_type env in
        let parse_incoming () =
          expect env Lexer.LBRACKET "'['";
          let op = parse_operand env ty in
          expect env Lexer.COMMA "','";
          let l =
            match Lexer.next env.lx with
            | Lexer.LOCAL l -> l
            | tok -> failf env.lx "expected incoming label, got '%s'" (Lexer.token_to_string tok)
          in
          expect env Lexer.RBRACKET "']'";
          (op, l)
        in
        let rec go acc =
          match Lexer.peek env.lx with
          | Lexer.COMMA ->
            Lexer.advance env.lx;
            go (parse_incoming () :: acc)
          | _ -> List.rev acc
        in
        let first = parse_incoming () in
        Phi { ty; incoming = go [ first ] }
      | "call" ->
        let ret_ty = parse_type env in
        let callee =
          match Lexer.next env.lx with
          | Lexer.GLOBAL g -> g
          | tok -> failf env.lx "expected callee, got '%s'" (Lexer.token_to_string tok)
        in
        expect env Lexer.LPAREN "'('";
        let rec args acc =
          match Lexer.peek env.lx with
          | Lexer.RPAREN ->
            Lexer.advance env.lx;
            List.rev acc
          | Lexer.COMMA ->
            Lexer.advance env.lx;
            args acc
          | _ -> args (parse_typed_operand env :: acc)
        in
        let args = args [] in
        skip_attrs env;
        Call { ret_ty; callee; args }
      | "freeze" ->
        let ty = parse_type env in
        let value = parse_operand env ty in
        Freeze { ty; value }
      | w -> failf env.lx "unknown instruction '%s'" w))

let parse_terminator env (word : string) : terminator =
  match word with
  | "ret" -> (
    match Lexer.peek env.lx with
    | Lexer.WORD "void" ->
      Lexer.advance env.lx;
      Ret None
    | _ ->
      let ty = parse_type env in
      let v = parse_operand env ty in
      Ret (Some (ty, v)))
  | "br" -> (
    match Lexer.peek env.lx with
    | Lexer.WORD "label" -> (
      Lexer.advance env.lx;
      match Lexer.next env.lx with
      | Lexer.LOCAL l -> Br l
      | tok -> failf env.lx "expected label, got '%s'" (Lexer.token_to_string tok))
    | _ ->
      let ty = parse_type env in
      if not (Types.equal ty Types.i1) then fail env.lx "conditional branch requires i1";
      let cond = parse_operand env Types.i1 in
      let branch_target () =
        expect env Lexer.COMMA "','";
        expect_word env "label";
        match Lexer.next env.lx with
        | Lexer.LOCAL l -> l
        | tok -> failf env.lx "expected label, got '%s'" (Lexer.token_to_string tok)
      in
      let if_true = branch_target () in
      let if_false = branch_target () in
      CondBr { cond; if_true; if_false })
  | "switch" ->
    let ty = parse_type env in
    let value = parse_operand env ty in
    expect env Lexer.COMMA "','";
    expect_word env "label";
    let default =
      match Lexer.next env.lx with
      | Lexer.LOCAL l -> l
      | tok -> failf env.lx "expected label, got '%s'" (Lexer.token_to_string tok)
    in
    expect env Lexer.LBRACKET "'['";
    let rec cases acc =
      match Lexer.peek env.lx with
      | Lexer.RBRACKET ->
        Lexer.advance env.lx;
        List.rev acc
      | _ ->
        let cty = parse_type env in
        if not (Types.equal cty ty) then fail env.lx "switch case type mismatch";
        let v =
          match Lexer.next env.lx with
          | Lexer.INT v -> Bits.mask (Types.width ty) v
          | tok -> failf env.lx "expected case value, got '%s'" (Lexer.token_to_string tok)
        in
        expect env Lexer.COMMA "','";
        expect_word env "label";
        let l =
          match Lexer.next env.lx with
          | Lexer.LOCAL l -> l
          | tok -> failf env.lx "expected label, got '%s'" (Lexer.token_to_string tok)
        in
        cases ((v, l) :: acc)
    in
    Switch { ty; value; default; cases = cases [] }
  | "unreachable" -> Unreachable
  | w -> failf env.lx "unknown terminator '%s'" w

let is_terminator_word = function
  | "ret" | "br" | "switch" | "unreachable" -> true
  | _ -> false

(* Blocks are introduced by 'name:' or a bare numeric label 'N:'. *)
let parse_block_header env : label option =
  match (Lexer.peek env.lx, Lexer.peek2 env.lx) with
  | Lexer.WORD w, Lexer.COLON ->
    Lexer.advance env.lx;
    Lexer.advance env.lx;
    Some w
  | Lexer.INT v, Lexer.COLON ->
    Lexer.advance env.lx;
    Lexer.advance env.lx;
    Some (Int64.to_string v)
  | _ -> None

let parse_blocks env : block list =
  (* Entry-block label may be implicit, as clang emits.  We synthesize
     "entry" when the function body starts directly with instructions. *)
  let blocks = ref [] in
  let finish label instrs term = blocks := { label; instrs = List.rev instrs; term } :: !blocks in
  let rec block label instrs =
    match Lexer.peek env.lx with
    | Lexer.LOCAL name ->
      Lexer.advance env.lx;
      expect env Lexer.EQUALS "'='";
      let word =
        match Lexer.next env.lx with
        | Lexer.WORD w -> w
        | tok -> failf env.lx "expected an opcode, got '%s'" (Lexer.token_to_string tok)
      in
      let instr = parse_instr_body env word in
      (match instr_result_type instr with
      | None -> failf env.lx "instruction '%s' does not produce a result" word
      | Some _ -> ());
      block label ({ name = Some name; instr } :: instrs)
    | Lexer.WORD w when is_terminator_word w ->
      Lexer.advance env.lx;
      let term = parse_terminator env w in
      finish label instrs term;
      next_block ()
    | Lexer.WORD w when not (Lexer.peek2 env.lx = Lexer.COLON) ->
      Lexer.advance env.lx;
      let instr = parse_instr_body env w in
      (* Unnamed instructions are only legal when used for effect. *)
      (match instr with
      | Call _ | Store _ -> ()
      | _ -> fail env.lx "instruction result must be named");
      block label ({ name = None; instr } :: instrs)
    | _ -> failf env.lx "expected instruction or terminator, got '%s'" (Lexer.token_to_string (Lexer.peek env.lx))
  and next_block () =
    match parse_block_header env with
    | Some l -> block l []
    | None -> (
      match Lexer.peek env.lx with
      | Lexer.RBRACE ->
        Lexer.advance env.lx;
        List.rev !blocks
      | tok -> failf env.lx "expected block label or '}', got '%s'" (Lexer.token_to_string tok))
  in
  match parse_block_header env with
  | Some l -> block l []
  | None -> block "entry" []

let parse_define env : func =
  skip_attrs env;
  let ret_ty = parse_type env in
  let fname =
    match Lexer.next env.lx with
    | Lexer.GLOBAL g -> g
    | tok -> failf env.lx "expected function name, got '%s'" (Lexer.token_to_string tok)
  in
  expect env Lexer.LPAREN "'('";
  let rec params acc i =
    match Lexer.peek env.lx with
    | Lexer.RPAREN ->
      Lexer.advance env.lx;
      List.rev acc
    | Lexer.COMMA ->
      Lexer.advance env.lx;
      params acc i
    | _ ->
      let ty = parse_type env in
      skip_attrs env;
      let name =
        match Lexer.peek env.lx with
        | Lexer.LOCAL v ->
          Lexer.advance env.lx;
          v
        | _ -> Int64.to_string (Int64.of_int i) (* clang-style unnamed %0, %1 ... *)
      in
      params ((ty, name) :: acc) (i + 1)
  in
  let params = params [] 0 in
  skip_attrs env;
  expect env Lexer.LBRACE "'{'";
  let blocks = parse_blocks env in
  { fname; ret_ty; params; blocks }

let parse_module_tokens env : modul =
  let globals = ref [] and decls = ref [] and funcs = ref [] in
  let rec go () =
    match Lexer.peek env.lx with
    | Lexer.EOF -> ()
    | Lexer.WORD "define" ->
      Lexer.advance env.lx;
      funcs := parse_define env :: !funcs;
      go ()
    | Lexer.WORD "declare" ->
      Lexer.advance env.lx;
      let pure =
        match Lexer.peek env.lx with
        | Lexer.WORD "readnone" ->
          Lexer.advance env.lx;
          true
        | _ -> false
      in
      skip_attrs env;
      let dret_ty = parse_type env in
      let dname =
        match Lexer.next env.lx with
        | Lexer.GLOBAL g -> g
        | tok -> failf env.lx "expected function name, got '%s'" (Lexer.token_to_string tok)
      in
      expect env Lexer.LPAREN "'('";
      let rec ptypes acc =
        match Lexer.peek env.lx with
        | Lexer.RPAREN ->
          Lexer.advance env.lx;
          List.rev acc
        | Lexer.COMMA ->
          Lexer.advance env.lx;
          ptypes acc
        | _ ->
          let t = parse_type env in
          skip_attrs env;
          ptypes (t :: acc)
      in
      let dparams = ptypes [] in
      decls := { dname; dret_ty; dparams; pure } :: !decls;
      go ()
    | Lexer.GLOBAL g -> (
      Lexer.advance env.lx;
      expect env Lexer.EQUALS "'='";
      skip_attrs env;
      match Lexer.next env.lx with
      | Lexer.WORD "global" | Lexer.WORD "constant" ->
        let gty = parse_type env in
        let init =
          match Lexer.next env.lx with
          | Lexer.INT v -> v
          | Lexer.WORD "zeroinitializer" -> 0L
          | tok -> failf env.lx "expected initializer, got '%s'" (Lexer.token_to_string tok)
        in
        let _ = parse_align_suffix env ~default:1 in
        globals := { gname = g; gty; init } :: !globals;
        go ()
      | tok -> failf env.lx "expected 'global', got '%s'" (Lexer.token_to_string tok))
    | Lexer.LOCAL name -> (
      (* named type: %struct.S = type { ... } *)
      Lexer.advance env.lx;
      expect env Lexer.EQUALS "'='";
      match Lexer.next env.lx with
      | Lexer.WORD "type" ->
        let t = parse_type env in
        env.type_aliases <- (name, t) :: env.type_aliases;
        go ()
      | tok -> failf env.lx "expected 'type', got '%s'" (Lexer.token_to_string tok))
    | tok -> failf env.lx "expected top-level entity, got '%s'" (Lexer.token_to_string tok)
  in
  go ();
  { globals = List.rev !globals; decls = List.rev !decls; funcs = List.rev !funcs }

let wrap_lexer_error f =
  try f () with Lexer.Error { line; message } -> raise (Error { line; message })

let parse_module src =
  wrap_lexer_error (fun () -> parse_module_tokens { lx = Lexer.create src; type_aliases = [] })

(** Parse a single function definition (the training/eval unit). *)
let parse_func src =
  let m = parse_module src in
  match m.funcs with
  | [ f ] -> f
  | [] -> raise (Error { line = 1; message = "no function definition found" })
  | _ -> raise (Error { line = 1; message = "expected exactly one function definition" })

(** Human-readable verdict for a parse attempt; used by the Alive-style
    verdict layer to classify model output as a syntax error. *)
let parse_func_result src : (func, string) result =
  match parse_func src with
  | f -> Ok f
  | exception Error { line; message } -> Result.Error (Fmt.str "line %d: %s" line message)

(** Control-flow graph utilities: successors/predecessors, reverse
    postorder, dominators (Cooper–Harvey–Kennedy), back-edge detection. *)

type t

val of_func : Ast.func -> t

val block_exn : t -> Ast.label -> Ast.block
(** @raise Invalid_argument on an unknown label. *)

val successors : t -> Ast.label -> Ast.label list
val predecessors : t -> Ast.label -> Ast.label list

val is_reachable : t -> Ast.label -> bool

val dominates : t -> Ast.label -> Ast.label -> bool
(** [dominates t a b]: every path from entry to [b] passes through [a].
    Both blocks must be reachable. *)

val back_edges : t -> (Ast.label * Ast.label) list
(** Edges [(src, dst)] where [dst] dominates [src]: loop indicators. *)

val has_loop : t -> bool

val blocks_rpo : t -> Ast.block list
(** Reachable blocks in reverse postorder, entry first. *)

(** Abstract syntax of the IR subset.

    The shape deliberately mirrors LLVM IR: a module holds globals, external
    declarations and function definitions; a function is a list of labelled
    basic blocks in SSA form; every block ends in exactly one terminator. *)

type var = string (* without the leading '%' *)
type label = string
type gname = string (* without the leading '@' *)

type const =
  | CInt of { width : int; value : int64 } (* canonical: masked to [width] *)
  | CNull (* the null pointer *)
  | CUndef of Types.t
  | CPoison of Types.t

type operand =
  | Var of var
  | Const of const
  | Global of gname (* address of a global, a [ptr]-typed constant *)

type binop =
  | Add
  | Sub
  | Mul
  | UDiv
  | SDiv
  | URem
  | SRem
  | Shl
  | LShr
  | AShr
  | And
  | Or
  | Xor

type icmp_pred = Eq | Ne | Ugt | Uge | Ult | Ule | Sgt | Sge | Slt | Sle

type cast_op = Trunc | ZExt | SExt | PtrToInt | IntToPtr | Bitcast

(** Poison-generating flags; which fields are meaningful depends on the
    opcode ([nsw]/[nuw] on add/sub/mul/shl, [exact] on udiv/sdiv/lshr/ashr). *)
type flags = { nsw : bool; nuw : bool; exact : bool }

let no_flags = { nsw = false; nuw = false; exact = false }

type instr =
  | Binop of { op : binop; flags : flags; ty : Types.t; lhs : operand; rhs : operand }
  | Icmp of { pred : icmp_pred; ty : Types.t; lhs : operand; rhs : operand }
  | Select of { ty : Types.t; cond : operand; if_true : operand; if_false : operand }
  | Cast of { op : cast_op; src_ty : Types.t; value : operand; dst_ty : Types.t }
  | Alloca of { ty : Types.t; align : int }
  | Load of { ty : Types.t; ptr : operand; align : int }
  | Store of { ty : Types.t; value : operand; ptr : operand; align : int }
      (** A [store] names no result; its [name] must be [None]. *)
  | Gep of { base_ty : Types.t; ptr : operand; indices : (Types.t * operand) list; inbounds : bool }
  | Phi of { ty : Types.t; incoming : (operand * label) list }
  | Call of { ret_ty : Types.t; callee : gname; args : (Types.t * operand) list }
  | Freeze of { ty : Types.t; value : operand }

type named_instr = { name : var option; instr : instr }

type terminator =
  | Ret of (Types.t * operand) option
  | Br of label
  | CondBr of { cond : operand; if_true : label; if_false : label }
  | Switch of { ty : Types.t; value : operand; default : label; cases : (int64 * label) list }
  | Unreachable

type block = { label : label; instrs : named_instr list; term : terminator }

type func = {
  fname : gname;
  ret_ty : Types.t;
  params : (Types.t * var) list;
  blocks : block list; (* the first block is the entry; it has no phis *)
}

type global = { gname : gname; gty : Types.t; init : int64 }

(** External declaration.  [pure] marks a function the verifier may model as
    an uninterpreted function; impure calls are observable events. *)
type decl = { dname : gname; dret_ty : Types.t; dparams : Types.t list; pure : bool }

type modul = { globals : global list; decls : decl list; funcs : func list }

let empty_module = { globals = []; decls = []; funcs = [] }

let const_int width value = Const (CInt { width; value = Bits.mask width value })
let const_bool b = const_int 1 (if b then 1L else 0L)

let entry_block f =
  match f.blocks with
  | [] -> invalid_arg "Ast.entry_block: function has no blocks"
  | b :: _ -> b

let find_block f l = List.find_opt (fun b -> b.label = l) f.blocks

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs
let find_decl m name = List.find_opt (fun d -> d.dname = name) m.decls
let find_global m name = List.find_opt (fun g -> g.gname = name) m.globals

(** Result type of an instruction, or [None] for [store] and void calls. *)
let instr_result_type = function
  | Binop { ty; _ } -> Some ty
  | Icmp _ -> Some Types.i1
  | Select { ty; _ } -> Some ty
  | Cast { dst_ty; _ } -> Some dst_ty
  | Alloca _ -> Some Types.Ptr
  | Load { ty; _ } -> Some ty
  | Store _ -> None
  | Gep _ -> Some Types.Ptr
  | Phi { ty; _ } -> Some ty
  | Call { ret_ty = Types.Void; _ } -> None
  | Call { ret_ty; _ } -> Some ret_ty
  | Freeze { ty; _ } -> Some ty

let operands_of_instr = function
  | Binop { lhs; rhs; _ } | Icmp { lhs; rhs; _ } -> [ lhs; rhs ]
  | Select { cond; if_true; if_false; _ } -> [ cond; if_true; if_false ]
  | Cast { value; _ } | Freeze { value; _ } -> [ value ]
  | Alloca _ -> []
  | Load { ptr; _ } -> [ ptr ]
  | Store { value; ptr; _ } -> [ value; ptr ]
  | Gep { ptr; indices; _ } -> ptr :: List.map snd indices
  | Phi { incoming; _ } -> List.map fst incoming
  | Call { args; _ } -> List.map snd args

let operands_of_terminator = function
  | Ret (Some (_, v)) -> [ v ]
  | Ret None | Br _ | Unreachable -> []
  | CondBr { cond; _ } -> [ cond ]
  | Switch { value; _ } -> [ value ]

let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | CondBr { if_true; if_false; _ } -> [ if_true; if_false ]
  | Switch { default; cases; _ } -> default :: List.map snd cases

(** Map every operand of an instruction through [f] (used by substitution,
    renaming and the mutation engine). *)
let map_instr_operands f = function
  | Binop b -> Binop { b with lhs = f b.lhs; rhs = f b.rhs }
  | Icmp i -> Icmp { i with lhs = f i.lhs; rhs = f i.rhs }
  | Select s ->
    Select { s with cond = f s.cond; if_true = f s.if_true; if_false = f s.if_false }
  | Cast c -> Cast { c with value = f c.value }
  | Alloca a -> Alloca a
  | Load l -> Load { l with ptr = f l.ptr }
  | Store s -> Store { s with value = f s.value; ptr = f s.ptr }
  | Gep g ->
    Gep { g with ptr = f g.ptr; indices = List.map (fun (t, o) -> (t, f o)) g.indices }
  | Phi p -> Phi { p with incoming = List.map (fun (o, l) -> (f o, l)) p.incoming }
  | Call c -> Call { c with args = List.map (fun (t, o) -> (t, f o)) c.args }
  | Freeze fr -> Freeze { fr with value = f fr.value }

let map_terminator_operands f = function
  | Ret (Some (t, v)) -> Ret (Some (t, f v))
  | Ret None -> Ret None
  | Br l -> Br l
  | CondBr c -> CondBr { c with cond = f c.cond }
  | Switch s -> Switch { s with value = f s.value }
  | Unreachable -> Unreachable

let binop_is_commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | UDiv | SDiv | URem | SRem | Shl | LShr | AShr -> false

let icmp_swap_pred = function
  | Eq -> Eq
  | Ne -> Ne
  | Ugt -> Ult
  | Uge -> Ule
  | Ult -> Ugt
  | Ule -> Uge
  | Sgt -> Slt
  | Sge -> Sle
  | Slt -> Sgt
  | Sle -> Sge

let icmp_negate_pred = function
  | Eq -> Ne
  | Ne -> Eq
  | Ugt -> Ule
  | Uge -> Ult
  | Ult -> Uge
  | Ule -> Ugt
  | Sgt -> Sle
  | Sge -> Slt
  | Slt -> Sge
  | Sle -> Sgt

let icmp_is_signed = function
  | Sgt | Sge | Slt | Sle -> true
  | Eq | Ne | Ugt | Uge | Ult | Ule -> false

let eval_icmp pred w a b =
  match pred with
  | Eq -> a = b
  | Ne -> a <> b
  | Ugt -> Bits.ult w b a
  | Uge -> Bits.ule w b a
  | Ult -> Bits.ult w a b
  | Ule -> Bits.ule w a b
  | Sgt -> Bits.slt w b a
  | Sge -> Bits.sle w b a
  | Slt -> Bits.slt w a b
  | Sle -> Bits.sle w a b

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | UDiv -> "udiv"
  | SDiv -> "sdiv"
  | URem -> "urem"
  | SRem -> "srem"
  | Shl -> "shl"
  | LShr -> "lshr"
  | AShr -> "ashr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let string_of_icmp_pred = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Ugt -> "ugt"
  | Uge -> "uge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Slt -> "slt"
  | Sle -> "sle"

let string_of_cast_op = function
  | Trunc -> "trunc"
  | ZExt -> "zext"
  | SExt -> "sext"
  | PtrToInt -> "ptrtoint"
  | IntToPtr -> "inttoptr"
  | Bitcast -> "bitcast"

(** First-class types of the IR subset.

    We model the integer, pointer and simple aggregate types that LLVM's
    [-instcombine] pass actually rewrites.  Vector and floating-point types
    are out of scope (the paper's examples are all scalar integer code). *)

type t =
  | Int of int  (** [Int w] is LLVM's [iw]; invariant [1 <= w <= 64]. *)
  | Ptr  (** An opaque pointer, as in modern LLVM IR. *)
  | Void
  | Array of int * t
  | Struct of t list

let i1 = Int 1
let i8 = Int 8
let i16 = Int 16
let i32 = Int 32
let i64 = Int 64

let is_integer = function Int _ -> true | Ptr | Void | Array _ | Struct _ -> false

let is_first_class = function
  | Int _ | Ptr -> true
  | Void | Array _ | Struct _ -> false

let width = function
  | Int w -> w
  | Ptr | Void | Array _ | Struct _ -> invalid_arg "Types.width: not an integer type"

(** Size of a stored value in bytes, using a simple AArch64-like layout:
    integers round up to whole bytes, pointers are 8 bytes, aggregates are
    packed with natural alignment padding elided (sufficient for a cost and
    memory model that only ever addresses constant offsets). *)
let rec size_in_bytes = function
  | Int w -> (w + 7) / 8
  | Ptr -> 8
  | Void -> 0
  | Array (n, t) -> n * size_in_bytes t
  | Struct ts -> List.fold_left (fun acc t -> acc + size_in_bytes t) 0 ts

(** Byte offset of field [i] of a struct. *)
let struct_field_offset ts i =
  let rec go acc k = function
    | [] -> invalid_arg "Types.struct_field_offset: index out of range"
    | t :: rest -> if k = i then acc else go (acc + size_in_bytes t) (k + 1) rest
  in
  go 0 0 ts

let rec equal a b =
  match a, b with
  | Int w1, Int w2 -> w1 = w2
  | Ptr, Ptr | Void, Void -> true
  | Array (n1, t1), Array (n2, t2) -> n1 = n2 && equal t1 t2
  | Struct ts1, Struct ts2 ->
    List.length ts1 = List.length ts2 && List.for_all2 equal ts1 ts2
  | (Int _ | Ptr | Void | Array _ | Struct _), _ -> false

let rec pp ppf = function
  | Int w -> Fmt.pf ppf "i%d" w
  | Ptr -> Fmt.string ppf "ptr"
  | Void -> Fmt.string ppf "void"
  | Array (n, t) -> Fmt.pf ppf "[%d x %a]" n pp t
  | Struct ts -> Fmt.pf ppf "{ %a }" Fmt.(list ~sep:(any ", ") pp) ts

let to_string t = Fmt.str "%a" pp t

(** IR well-formedness: type rules plus SSA dominance.

    Model output that parses but fails these checks is "invalid IR" in the
    paper's Table I/II sense; the error strings double as training
    diagnostics. *)

type error = string

val validate_func : ?module_:Ast.modul -> Ast.func -> (unit, error list) result
(** Check one function.  [module_] supplies call-target signatures and
    global names when available. *)

val validate_module : Ast.modul -> (unit, error list) result
(** Check every function of a module, prefixing errors with the function
    name. *)

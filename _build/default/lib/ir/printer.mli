(** Textual form of the IR, close to LLVM's `.ll` syntax; output round-trips
    through {!Parser}. *)

val pp_const : Format.formatter -> Ast.const -> unit
val pp_operand : Format.formatter -> Ast.operand -> unit
val pp_instr : Format.formatter -> Ast.named_instr -> unit
val pp_terminator : Format.formatter -> Ast.terminator -> unit
val pp_block : Format.formatter -> Ast.block -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_module : Format.formatter -> Ast.modul -> unit

val func_to_string : Ast.func -> string
val module_to_string : Ast.modul -> string
val instr_to_string : Ast.named_instr -> string
val operand_to_string : Ast.operand -> string
val terminator_to_string : Ast.terminator -> string

(** Recursive-descent parser for the `.ll`-style textual IR.

    Accepts both this library's canonical output (opaque [ptr]) and
    clang-era syntax: typed pointers ([i64*]), numeric block labels,
    [dso_local]/[noundef]/[#N] attributes, and named struct types. *)

exception Error of { line : int; message : string }

val parse_module : string -> Ast.modul
(** Parse a whole module.  @raise Error on malformed input. *)

val parse_func : string -> Ast.func
(** Parse text containing exactly one function definition.
    @raise Error otherwise. *)

val parse_func_result : string -> (Ast.func, string) result
(** Like {!parse_func} but reporting the failure as a message with its line
    number — the form the verdict layer turns into a syntax-error
    diagnostic. *)

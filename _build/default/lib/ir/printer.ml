(** Textual form of the IR, deliberately close to LLVM's `.ll` syntax so that
    outputs read like the paper's figures and round-trip through the parser. *)

open Ast

let pp_const ppf = function
  | CInt { width = 1; value } -> Fmt.string ppf (if value = 1L then "true" else "false")
  | CInt { width; value } -> Fmt.pf ppf "%Ld" (Bits.to_signed width value)
  | CNull -> Fmt.string ppf "null"
  | CUndef _ -> Fmt.string ppf "undef"
  | CPoison _ -> Fmt.string ppf "poison"

let pp_operand ppf = function
  | Var v -> Fmt.pf ppf "%%%s" v
  | Const c -> pp_const ppf c
  | Global g -> Fmt.pf ppf "@%s" g

let pp_typed_operand ppf (ty, op) = Fmt.pf ppf "%a %a" Types.pp ty pp_operand op

let pp_flags op ppf { nsw; nuw; exact } =
  (match op with
  | Add | Sub | Mul | Shl ->
    if nuw then Fmt.string ppf " nuw";
    if nsw then Fmt.string ppf " nsw"
  | UDiv | SDiv | LShr | AShr -> if exact then Fmt.string ppf " exact"
  | URem | SRem | And | Or | Xor -> ())

let pp_instr ppf { name; instr } =
  (match name with Some n -> Fmt.pf ppf "%%%s = " n | None -> ());
  match instr with
  | Binop { op; flags; ty; lhs; rhs } ->
    Fmt.pf ppf "%s%a %a %a, %a" (string_of_binop op) (pp_flags op) flags Types.pp ty pp_operand
      lhs pp_operand rhs
  | Icmp { pred; ty; lhs; rhs } ->
    Fmt.pf ppf "icmp %s %a %a, %a" (string_of_icmp_pred pred) Types.pp ty pp_operand lhs
      pp_operand rhs
  | Select { ty; cond; if_true; if_false } ->
    Fmt.pf ppf "select i1 %a, %a %a, %a %a" pp_operand cond Types.pp ty pp_operand if_true
      Types.pp ty pp_operand if_false
  | Cast { op; src_ty; value; dst_ty } ->
    Fmt.pf ppf "%s %a %a to %a" (string_of_cast_op op) Types.pp src_ty pp_operand value Types.pp
      dst_ty
  | Alloca { ty; align } -> Fmt.pf ppf "alloca %a, align %d" Types.pp ty align
  | Load { ty; ptr; align } ->
    Fmt.pf ppf "load %a, ptr %a, align %d" Types.pp ty pp_operand ptr align
  | Store { ty; value; ptr; align } ->
    Fmt.pf ppf "store %a %a, ptr %a, align %d" Types.pp ty pp_operand value pp_operand ptr align
  | Gep { base_ty; ptr; indices; inbounds } ->
    Fmt.pf ppf "getelementptr%s %a, ptr %a%a"
      (if inbounds then " inbounds" else "")
      Types.pp base_ty pp_operand ptr
      Fmt.(list ~sep:nop (fun ppf x -> pf ppf ", %a" pp_typed_operand x))
      indices
  | Phi { ty; incoming } ->
    let pp_inc ppf (op, l) = Fmt.pf ppf "[ %a, %%%s ]" pp_operand op l in
    Fmt.pf ppf "phi %a %a" Types.pp ty Fmt.(list ~sep:(any ", ") pp_inc) incoming
  | Call { ret_ty; callee; args } ->
    Fmt.pf ppf "call %a @%s(%a)" Types.pp ret_ty callee
      Fmt.(list ~sep:(any ", ") pp_typed_operand)
      args
  | Freeze { ty; value } -> Fmt.pf ppf "freeze %a %a" Types.pp ty pp_operand value

let pp_terminator ppf = function
  | Ret None -> Fmt.string ppf "ret void"
  | Ret (Some (ty, v)) -> Fmt.pf ppf "ret %a %a" Types.pp ty pp_operand v
  | Br l -> Fmt.pf ppf "br label %%%s" l
  | CondBr { cond; if_true; if_false } ->
    Fmt.pf ppf "br i1 %a, label %%%s, label %%%s" pp_operand cond if_true if_false
  | Switch { ty; value; default; cases } ->
    let pp_case ppf (v, l) = Fmt.pf ppf "%a %Ld, label %%%s" Types.pp ty v l in
    Fmt.pf ppf "switch %a %a, label %%%s [ %a ]" Types.pp ty pp_operand value default
      Fmt.(list ~sep:(any " ") pp_case)
      cases
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_block ppf { label; instrs; term } =
  Fmt.pf ppf "%s:@\n" label;
  List.iter (fun i -> Fmt.pf ppf "  %a@\n" pp_instr i) instrs;
  Fmt.pf ppf "  %a@\n" pp_terminator term

let pp_func ppf f =
  let pp_param ppf (ty, v) = Fmt.pf ppf "%a %%%s" Types.pp ty v in
  Fmt.pf ppf "define %a @%s(%a) {@\n" Types.pp f.ret_ty f.fname
    Fmt.(list ~sep:(any ", ") pp_param)
    f.params;
  (* The entry block label is printed too: keeps parsing uniform. *)
  List.iter (pp_block ppf) f.blocks;
  Fmt.pf ppf "}@\n"

let pp_global ppf (g : global) =
  Fmt.pf ppf "@%s = global %a %Ld@\n" g.gname Types.pp g.gty g.init

let pp_decl ppf (d : decl) =
  Fmt.pf ppf "declare%s %a @%s(%a)@\n"
    (if d.pure then " readnone" else "")
    Types.pp d.dret_ty d.dname
    Fmt.(list ~sep:(any ", ") Types.pp)
    d.dparams

let pp_module ppf (m : modul) =
  List.iter (pp_global ppf) m.globals;
  List.iter (pp_decl ppf) m.decls;
  List.iter (fun f -> pp_func ppf f) m.funcs

let func_to_string f = Fmt.str "%a" pp_func f
let module_to_string m = Fmt.str "%a" pp_module m
let instr_to_string i = Fmt.str "%a" pp_instr i
let operand_to_string o = Fmt.str "%a" pp_operand o
let terminator_to_string t = Fmt.str "%a" pp_terminator t

(** Helpers for constructing and transforming functions programmatically:
    fresh names, instruction substitution, and block surgery.  Used by the
    lowering pipeline, the peephole engine and the mutation engine. *)

open Ast

(** A fresh-name supply seeded with all names already used in a function. *)
type names = { mutable used : (string, unit) Hashtbl.t; mutable counter : int }

let names_of_func (f : func) : names =
  let used = Hashtbl.create 64 in
  List.iter (fun (_, v) -> Hashtbl.replace used v ()) f.params;
  List.iter
    (fun b ->
      Hashtbl.replace used b.label ();
      List.iter
        (fun { name; _ } -> match name with Some n -> Hashtbl.replace used n () | None -> ())
        b.instrs)
    f.blocks;
  { used; counter = 0 }

let fresh names prefix =
  let rec go () =
    let candidate = Fmt.str "%s%d" prefix names.counter in
    names.counter <- names.counter + 1;
    if Hashtbl.mem names.used candidate then go ()
    else (
      Hashtbl.replace names.used candidate ();
      candidate)
  in
  go ()

(** Substitute operand [from] with [to_] everywhere in a function (used when a
    rewrite replaces an instruction's result with another value). *)
let substitute_operand (f : func) ~(from : var) ~(to_ : operand) : func =
  let subst op = match op with Var v when v = from -> to_ | _ -> op in
  {
    f with
    blocks =
      List.map
        (fun b ->
          {
            b with
            instrs =
              List.map (fun ni -> { ni with instr = map_instr_operands subst ni.instr }) b.instrs;
            term = map_terminator_operands subst b.term;
          })
        f.blocks;
  }

(** Replace the instruction named [name] with a new instruction list
    (possibly empty if the value was substituted away). *)
let replace_instr (f : func) ~(name : var) ~(with_ : named_instr list) : func =
  {
    f with
    blocks =
      List.map
        (fun b ->
          {
            b with
            instrs =
              List.concat_map
                (fun ni -> if ni.name = Some name then with_ else [ ni ])
                b.instrs;
          })
        f.blocks;
  }

let remove_instr_at (f : func) ~(block : label) ~(index : int) : func =
  {
    f with
    blocks =
      List.map
        (fun b ->
          if b.label = block then
            { b with instrs = List.filteri (fun i _ -> i <> index) b.instrs }
          else b)
        f.blocks;
  }

let map_blocks (f : func) g = { f with blocks = List.map g f.blocks }

(** All uses of each variable, for use-count-based rewrites (e.g. "has one
    use" preconditions in instcombine). *)
let use_counts (f : func) : (var, int) Hashtbl.t =
  let counts = Hashtbl.create 64 in
  let note = function
    | Var v -> Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
    | Const _ | Global _ -> ()
  in
  List.iter
    (fun b ->
      List.iter (fun { instr; _ } -> List.iter note (operands_of_instr instr)) b.instrs;
      List.iter note (operands_of_terminator b.term))
    f.blocks;
  counts

(** Map from defined variable to its defining instruction. *)
let def_map (f : func) : (var, instr) Hashtbl.t =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun { name; instr } ->
          match name with Some n -> Hashtbl.replace defs n instr | None -> ())
        b.instrs)
    f.blocks;
  defs

(** Renumber all locals and labels to the compact clang-like scheme
    (%0, %1, ...), preserving program order.  Canonicalizing names makes
    exact-match comparison meaningful across differently-named but
    structurally identical outputs. *)
let renumber (f : func) : func =
  let mapping = Hashtbl.create 64 in
  let next = ref 0 in
  let assign name =
    if not (Hashtbl.mem mapping name) then (
      Hashtbl.replace mapping name (string_of_int !next);
      incr next)
  in
  List.iter (fun (_, v) -> assign v) f.params;
  List.iter
    (fun b ->
      assign b.label;
      List.iter
        (fun { name; _ } -> match name with Some n -> assign n | None -> ())
        b.instrs)
    f.blocks;
  let rename n = try Hashtbl.find mapping n with Not_found -> n in
  let rename_op = function Var v -> Var (rename v) | op -> op in
  let rename_term t =
    let t = map_terminator_operands rename_op t in
    match t with
    | Br l -> Br (rename l)
    | CondBr c -> CondBr { c with if_true = rename c.if_true; if_false = rename c.if_false }
    | Switch s ->
      Switch
        { s with default = rename s.default; cases = List.map (fun (v, l) -> (v, rename l)) s.cases }
    | Ret _ | Unreachable -> t
  in
  let rename_instr i =
    let i = map_instr_operands rename_op i in
    match i with
    | Phi p -> Phi { p with incoming = List.map (fun (o, l) -> (o, rename l)) p.incoming }
    | _ -> i
  in
  {
    f with
    params = List.map (fun (t, v) -> (t, rename v)) f.params;
    blocks =
      List.map
        (fun b ->
          {
            label = rename b.label;
            instrs =
              List.map
                (fun { name; instr } -> { name = Option.map rename name; instr = rename_instr instr })
                b.instrs;
            term = rename_term b.term;
          })
        f.blocks;
  }

(** Structural equality modulo local/label names. *)
let alpha_equal (a : func) (b : func) : bool = renumber a = renumber b

let instr_count (f : func) : int =
  List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

(** Hand-written lexer for the `.ll`-style textual IR.

    Tokens carry the 1-based line on which they start so the parser can
    produce Alive2-style diagnostics ("syntax error, line N"). *)

type token =
  | LOCAL of string (* %name *)
  | GLOBAL of string (* @name *)
  | WORD of string (* keywords, type names, bare label names *)
  | INT of int64
  | EQUALS
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COLON
  | STAR
  | EOF

exception Error of { line : int; message : string }

type t = { tokens : (token * int) array; mutable pos : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : (token * int) array =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit tok = out := (tok, !line) :: !out in
  let read_ident start =
    let j = ref start in
    while !j < n && is_ident_char src.[!j] do
      incr j
    done;
    let s = String.sub src start (!j - start) in
    i := !j;
    s
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (
      incr line;
      incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then (
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done)
    else if c = '%' then (
      incr i;
      if !i < n && is_ident_char src.[!i] then emit (LOCAL (read_ident !i))
      else raise (Error { line = !line; message = "expected identifier after '%'" }))
    else if c = '@' then (
      incr i;
      if !i < n && is_ident_char src.[!i] then emit (GLOBAL (read_ident !i))
      else raise (Error { line = !line; message = "expected identifier after '@'" }))
    else if c = '-' || is_digit c then (
      let start = !i in
      if c = '-' then incr i;
      if !i >= n || not (is_digit src.[!i]) then
        raise (Error { line = !line; message = "expected digits after '-'" });
      if
        src.[!i] = '0'
        && !i + 1 < n
        && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then (
        i := !i + 2;
        let hstart = !i in
        while
          !i < n
          && (is_digit src.[!i]
             || (src.[!i] >= 'a' && src.[!i] <= 'f')
             || (src.[!i] >= 'A' && src.[!i] <= 'F'))
        do
          incr i
        done;
        if !i = hstart then raise (Error { line = !line; message = "bad hex literal" });
        let s = String.sub src hstart (!i - hstart) in
        let v =
          try Int64.of_string ("0x" ^ s)
          with _ -> raise (Error { line = !line; message = "hex literal out of range" })
        in
        emit (INT (if c = '-' then Int64.neg v else v)))
      else (
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        let s = String.sub src start (!i - start) in
        match Int64.of_string_opt s with
        | Some v -> emit (INT v)
        | None -> raise (Error { line = !line; message = "integer literal out of range: " ^ s })))
    else if c = '#' then (
      (* attribute-group references like [#0]; kept as words, skipped by the
         parser so that clang-style IR from the paper's figures parses *)
      incr i;
      emit (WORD ("#" ^ read_ident !i)))
    else if is_ident_char c then (
      let w = read_ident !i in
      (* A word immediately followed by ':' is a block label. *)
      emit (WORD w))
    else (
      (match c with
      | '=' -> emit EQUALS
      | ',' -> emit COMMA
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | ':' -> emit COLON
      | '*' -> emit STAR
      | _ ->
        raise (Error { line = !line; message = Fmt.str "unexpected character %C" c }));
      incr i)
  done;
  out := (EOF, !line) :: !out;
  Array.of_list (List.rev !out)

let create src = { tokens = tokenize src; pos = 0 }

let peek t = fst t.tokens.(t.pos)
let peek2 t = if t.pos + 1 < Array.length t.tokens then fst t.tokens.(t.pos + 1) else EOF
let line t = snd t.tokens.(t.pos)
let advance t = if t.pos + 1 < Array.length t.tokens then t.pos <- t.pos + 1

let next t =
  let tok = peek t in
  advance t;
  tok

let token_to_string = function
  | LOCAL s -> "%" ^ s
  | GLOBAL s -> "@" ^ s
  | WORD s -> s
  | INT v -> Int64.to_string v
  | EQUALS -> "="
  | COMMA -> ","
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COLON -> ":"
  | STAR -> "*"
  | EOF -> "<eof>"

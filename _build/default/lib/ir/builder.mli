(** Construction and surgery helpers used by the lowering pipeline, the
    peephole engine and the mutation engine. *)

type names
(** A fresh-name supply seeded with all names already used in a function. *)

val names_of_func : Ast.func -> names
val fresh : names -> string -> string

val substitute_operand : Ast.func -> from:Ast.var -> to_:Ast.operand -> Ast.func
(** Replace every use of [from] (including phi incomings) with [to_]. *)

val replace_instr : Ast.func -> name:Ast.var -> with_:Ast.named_instr list -> Ast.func
(** Replace the instruction defining [name] with a (possibly empty) list. *)

val remove_instr_at : Ast.func -> block:Ast.label -> index:int -> Ast.func
val map_blocks : Ast.func -> (Ast.block -> Ast.block) -> Ast.func

val use_counts : Ast.func -> (Ast.var, int) Hashtbl.t
(** Number of uses of each SSA value ("has one use" preconditions). *)

val def_map : Ast.func -> (Ast.var, Ast.instr) Hashtbl.t
(** Defined variable to defining instruction. *)

val renumber : Ast.func -> Ast.func
(** Rename all locals and labels to the compact clang-like scheme
    (%0, %1, ...), preserving program order. *)

val alpha_equal : Ast.func -> Ast.func -> bool
(** Structural equality modulo local/label names: the paper's "exact match
    with the reference IR" and its "copy of input" detector. *)

val instr_count : Ast.func -> int

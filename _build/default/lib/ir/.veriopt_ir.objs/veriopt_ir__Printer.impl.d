lib/ir/printer.ml: Ast Bits Fmt List Types

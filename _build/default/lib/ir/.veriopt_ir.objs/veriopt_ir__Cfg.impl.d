lib/ir/cfg.ml: Array Ast Fmt Hashtbl List Map Seq Set String

lib/ir/bits.mli:

lib/ir/ast.ml: Bits List Types

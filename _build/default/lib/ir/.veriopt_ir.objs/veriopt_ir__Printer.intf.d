lib/ir/printer.mli: Ast Format

lib/ir/parser.ml: Ast Bits Fmt Int64 Lexer List Result String Types

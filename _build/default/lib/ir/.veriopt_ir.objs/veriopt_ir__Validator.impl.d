lib/ir/validator.ml: Ast Cfg Fmt Hashtbl List Map String Types

lib/ir/types.ml: Fmt List

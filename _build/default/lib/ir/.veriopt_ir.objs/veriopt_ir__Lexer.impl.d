lib/ir/lexer.ml: Array Fmt Int64 List String

lib/ir/bits.ml: Fmt Int64

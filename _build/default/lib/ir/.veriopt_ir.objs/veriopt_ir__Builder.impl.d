lib/ir/builder.ml: Ast Fmt Hashtbl List Option

lib/ir/validator.mli: Ast

lib/ir/builder.mli: Ast Hashtbl

(** First-class types of the IR subset: integers [i1..i64], opaque pointers,
    void, and simple aggregates for allocas/geps. *)

type t =
  | Int of int  (** [Int w] is LLVM's [iw]; invariant [1 <= w <= 64]. *)
  | Ptr
  | Void
  | Array of int * t
  | Struct of t list

val i1 : t
val i8 : t
val i16 : t
val i32 : t
val i64 : t

val is_integer : t -> bool
val is_first_class : t -> bool

val width : t -> int
(** @raise Invalid_argument on non-integer types. *)

val size_in_bytes : t -> int
val struct_field_offset : t list -> int -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

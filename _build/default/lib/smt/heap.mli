(** Indexed max-heap over variable activities: the VSIDS decision order. *)

type t

val create : capacity:int -> score:(int -> float) -> t
val in_heap : t -> int -> bool
val is_empty : t -> bool
val insert : t -> int -> unit
val pop_max : t -> int
val notify_increase : t -> int -> unit

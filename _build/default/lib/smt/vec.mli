(** Growable int arrays: the SAT solver's workhorse container. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
val clear : t -> unit
val shrink : t -> int -> unit
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list

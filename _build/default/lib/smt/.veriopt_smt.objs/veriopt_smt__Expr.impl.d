lib/smt/expr.ml: Fmt Hashtbl List Veriopt_ir

lib/smt/sat.ml: Array Heap List Vec

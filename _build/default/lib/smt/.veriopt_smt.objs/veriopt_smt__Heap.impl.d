lib/smt/heap.ml: Array

lib/smt/heap.mli:

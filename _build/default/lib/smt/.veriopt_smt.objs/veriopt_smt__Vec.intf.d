lib/smt/vec.mli:

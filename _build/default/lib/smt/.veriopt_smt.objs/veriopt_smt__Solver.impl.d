lib/smt/solver.ml: Bitblast Expr List Sat Veriopt_ir

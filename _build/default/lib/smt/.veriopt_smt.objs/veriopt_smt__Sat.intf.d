lib/smt/sat.mli:

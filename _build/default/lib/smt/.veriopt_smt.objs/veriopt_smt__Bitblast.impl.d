lib/smt/bitblast.ml: Array Expr Hashtbl Int64 Option Sat Veriopt_ir

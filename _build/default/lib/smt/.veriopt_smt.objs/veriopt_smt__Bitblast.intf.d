lib/smt/bitblast.mli: Expr Hashtbl Sat

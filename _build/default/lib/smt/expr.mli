(** Hash-consed SMT terms over booleans and fixed-width bitvectors (1..64).

    Smart constructors constant-fold and apply local identities; structurally
    equal terms are physically equal (the bit-blaster memoizes on [id]). *)

type sort = Bool | BV of int

type bv_binop =
  | Add
  | Sub
  | Mul
  | UDiv
  | URem
  | SDiv
  | SRem
  | Shl
  | LShr
  | AShr
  | And
  | Or
  | Xor

type t = private { id : int; node : node; sort : sort }

and node =
  | True
  | False
  | BoolVar of string
  | Not of t
  | BAnd of t * t
  | BOr of t * t
  | BXor of t * t
  | BIte of t * t * t
  | Eq of t * t
  | Ult of t * t
  | Slt of t * t
  | BvConst of { width : int; value : int64 }
  | BvVar of { name : string; width : int }
  | BvBin of bv_binop * t * t
  | BvNot of t
  | BvNeg of t
  | BvIte of t * t * t
  | BvZext of int * t
  | BvSext of int * t
  | BvTrunc of int * t

val width : t -> int

(** {1 Booleans} *)

val tt : t
val ff : t
val bool_var : string -> t
val of_bool : bool -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor_ : t -> t -> t
val implies : t -> t -> t
val bool_ite : t -> t -> t -> t
val conj : t list -> t
val disj : t list -> t

(** {1 Bitvectors} *)

val bv_const : int -> int64 -> t
val bv_var : string -> int -> t
val const_value : t -> int64 option
val is_const_of : t -> int64 -> bool

val bin : bv_binop -> t -> t -> t
(** Division by zero follows SMT-LIB in constant folding; the IR encoder
    guards those cases with explicit UB conditions. *)

val bv_not : t -> t
val bv_neg : t -> t
val eq : t -> t -> t
val ult : t -> t -> t
val slt : t -> t -> t
val ule : t -> t -> t
val sle : t -> t -> t
val ugt : t -> t -> t
val sgt : t -> t -> t
val uge : t -> t -> t
val sge : t -> t -> t
val bv_ite : t -> t -> t -> t
val zext : int -> t -> t
val sext : int -> t -> t
val trunc : int -> t -> t

val bool_to_bv1 : t -> t
val bv1_to_bool : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

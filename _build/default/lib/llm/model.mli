(** The surrogate policy standing in for the fine-tuned LLM.

    A completion is a sequence of structured choices — edit actions over the
    input function, a format-compliance choice, and (in augmented mode) a
    self-diagnosis — each drawn from a softmax over learnable logits, so
    [log pi] is exact and differentiable: all SFT and GRPO need.

    Three non-trainable properties model LLM phenomenology: deterministic
    input-dependent noise (prompt sensitivity), frozen parameters (rules
    beyond the model's capacity), and an irreducible per-step hallucination
    floor. *)

module Ast = Veriopt_ir.Ast

type t = {
  name : string;
  theta : (string, float ref) Hashtbl.t;
  frozen : (string, unit) Hashtbl.t;
  noise_scale : float;
  temperature : float;
  halluc_rate : float;
  pass_size_limit : int;
}

val create :
  ?noise_scale:float -> ?temperature:float -> ?halluc_rate:float -> ?pass_size_limit:int ->
  string -> t

val freeze : t -> string -> unit
val is_frozen : t -> string -> bool

val param : t -> string -> float ref
val get : t -> string -> float
val set : t -> string -> float -> unit

val clone : ?name:string -> ?noise_scale:float -> ?halluc_rate:float -> t -> t
(** Deep copy; fine-tuned clones typically sharpen (lower noise) and, for
    verifier-feedback stages, halve the hallucination floor. *)

(** {1 Scoring and decisions} *)

val keys_of_action : Actions.action -> string list

type avail = { action : Actions.action; keys : string list }

val score : t -> sample_id:int -> avail -> float

type step = { keys : string list array; probs : float array; chosen : int }
(** One recorded decision: sufficient statistics for [d log pi / d theta]. *)

val softmax : float -> float array -> float array

val choose : t -> rng:Random.State.t option -> sample_id:int -> avail list -> int * step
(** Greedy when [rng] is [None]. *)

val available :
  ?mask:string list -> ?size_limit:int -> first:bool -> Ast.modul -> Ast.func -> avail list

val format_avail : avail list
val diag_avail : Diag.self_evidence -> avail list

(** {1 Rollouts and full generations} *)

val max_edit_steps : int

type attempt = {
  out_func : Ast.func;
  corruption : Actions.corruption option;
  copied : bool;
  evidence : Diag.self_evidence;
  attempt_steps : step list;
  actions_taken : Actions.action list;
}

val rollout_attempt :
  t -> rng:Random.State.t option -> sample_id:int -> ?mask:string list -> Ast.modul -> Ast.func ->
  attempt

val attempt_text : t -> sample_id:int -> attempt -> string

type generation = {
  completion : string;
  answer_text : string option;
  steps : step list;
  claimed : Diag.error_class option;
  evidence : Diag.self_evidence;
  copied : bool;
  first_attempt : attempt;
  final_attempt : attempt;
}

val generate :
  t -> mode:Prompt.mode -> rng:Random.State.t option -> sample_id:int -> Ast.modul -> Ast.func ->
  generation

(** Capability profiles: parameter-count surrogates.

    [init kappa] sets a policy's competence prior — which rules it "knows",
    how often it hallucinates, how well it follows the output format — as a
    single scalar in (0, 1].  Rules outside the model's capacity are
    {e frozen}: no amount of fine-tuning teaches them (the paper attributes
    its Fig. 11/12 misses to "too few model parameters to fully represent
    InstCombine").  The mapping is calibrated so that kappa = 0.5 ("3B")
    reproduces the Table I mix of copies / syntax errors / semantic errors
    before any fine-tuning, and the 0.5B..32B family reproduces the
    qualitative ordering of the paper's Fig. 5 baselines. *)

(* A stable pseudo-uniform in [0,1) per string. *)
let frac (s : string) = float_of_int (Hashtbl.hash (s, "cap") land 0xffff) /. 65536.

let known_rule kappa name = frac name < 0.72 +. (0.5 *. kappa)

(* Emergent pass-level behaviour is within reach of all but the smallest
   models, but far from their priors. *)
let known_pass kappa name = frac ("pass!" ^ name) < 0.1 +. kappa

let init ?(name = "model") (kappa : float) : Model.t =
  let halluc_rate = Float.max 0.004 (0.040 -. (0.030 *. kappa)) in
  let pass_size_limit = int_of_float (8. +. (16. *. kappa)) in
  let t = Model.create ~noise_scale:2.6 ~temperature:1.0 ~halluc_rate ~pass_size_limit name in
  (* action-kind priors *)
  Model.set t "act:copy" (4.3 -. (2.4 *. kappa));
  Model.set t "act:stop" 0.9;
  Model.set t "act:rule" (-0.2 +. (2.4 *. kappa));
  Model.set t "act:pass" (-4.0 +. (2.0 *. kappa));
  Model.set t "act:unsound" (1.65 -. (2.2 *. kappa));
  Model.set t "act:corrupt" (1.9 -. (3.2 *. kappa));
  Model.set t "format:ok" (1.2 +. (3.2 *. kappa));
  Model.set t "format:bad" 0.0;
  (* rule knowledge; unknown rules are frozen out of reach *)
  List.iter
    (fun r ->
      let key = "rule:" ^ r in
      if known_rule kappa r then Model.set t key 0.0
      else begin
        Model.set t key (-6.0);
        Model.freeze t key
      end)
    ("constant-fold" :: Veriopt_passes.Instcombine.rule_names);
  (* block-local memory cleanup is core instcombine behaviour, within any
     model's reach; only the global, emergent passes are capacity-gated *)
  List.iter (fun p -> Model.set t ("pass:" ^ p) 0.0) [ "forward-loads"; "dead-stores" ];
  List.iter
    (fun p ->
      let key = "pass:" ^ p in
      if known_pass kappa p then Model.set t key 0.0
      else begin
        Model.set t key (-6.0);
        Model.freeze t key
      end)
    [ "mem2reg"; "simplifycfg" ];
  t

(** The model zoo of the paper's Fig. 5, in parameter-size order, with the
    kappa each size maps to. *)
let zoo : (string * float) list =
  [
    ("Qwen-0.5B", 0.35);
    ("Qwen-3B", 0.5);
    ("LLM-Compiler-7B", 0.62);
    ("Qwen-7B", 0.62);
    ("Llama-8B", 0.65);
    ("Qwen-32B", 0.8);
  ]

let base_3b () = init ~name:"Qwen-3B" 0.5

(** LLM-Compiler: trained for compiler emulation — near-perfect format
    compliance and few outright syntax errors (95.6% of its outputs compile
    in the paper), but it mimics pass pipelines rather than verified
    peephole rewriting, so semantic drift is common and exact matches are
    rare (20%). *)
let llm_compiler_7b () =
  let t = init ~name:"LLM-Compiler-7B" 0.62 in
  Model.set t "format:ok" 5.5;
  Model.set t "act:copy" 0.8;
  Model.set t "act:corrupt" (-1.6);
  Model.set t "act:rule" 1.2;
  Model.set t "act:unsound" 0.2;
  t

let of_zoo (name : string) : Model.t =
  match name with
  | "LLM-Compiler-7B" -> llm_compiler_7b ()
  | _ -> init ~name (List.assoc name zoo)

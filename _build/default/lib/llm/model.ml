(** The surrogate policy standing in for the fine-tuned LLM.

    A completion is sampled as a sequence of structured choices — edit
    actions over the input function, a format-compliance choice, and (in
    augmented mode) a self-diagnosis — each drawn from a softmax over
    learnable logits.  [log pi] of a completion is therefore exact and
    differentiable in the parameters, which is all that SFT and GRPO need.

    Input sensitivity is modelled by a deterministic pseudo-noise term per
    (input, action) pair: like a real LLM, the policy behaves differently on
    different prompts even under greedy decoding, and training must shift
    logits enough to dominate that noise.  The [capability] initialization
    (see {!Capability}) controls the competence prior, standing in for
    parameter count. *)

open Veriopt_ir
module Ast = Veriopt_ir.Ast

type t = {
  name : string;
  theta : (string, float ref) Hashtbl.t;
  frozen : (string, unit) Hashtbl.t;
      (* parameters outside the model's representational capacity: rules a
         small model simply cannot learn (the paper attributes its fig. 11/12
         misses to "too few model parameters to fully represent
         InstCombine") *)
  noise_scale : float;
  temperature : float;
  halluc_rate : float;
      (* irreducible per-step hallucination floor: even the trained paper
         model keeps ~9% semantic+syntax errors (Table II); no amount of
         fine-tuning drives an LLM's failure rate to zero *)
  pass_size_limit : int;
      (* whole-function transformations (mem2reg/simplifycfg) only succeed on
         functions the model can "hold in its head"; emergent wins in the
         paper are on small functions (its Figs. 8-10) *)
}

let create ?(noise_scale = 2.0) ?(temperature = 1.0) ?(halluc_rate = 0.0)
    ?(pass_size_limit = max_int) name =
  {
    name;
    theta = Hashtbl.create 256;
    frozen = Hashtbl.create 16;
    noise_scale;
    temperature;
    halluc_rate;
    pass_size_limit;
  }

let freeze (t : t) key = Hashtbl.replace t.frozen key ()
let is_frozen (t : t) key = Hashtbl.mem t.frozen key

let param (t : t) key =
  match Hashtbl.find_opt t.theta key with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t.theta key r;
    r

let get (t : t) key = !(param t key)
let set (t : t) key v = param t key := v

let clone ?name ?noise_scale ?halluc_rate (t : t) : t =
  let copy = Hashtbl.create (Hashtbl.length t.theta) in
  Hashtbl.iter (fun k r -> Hashtbl.replace copy k (ref !r)) t.theta;
  let frozen = Hashtbl.copy t.frozen in
  {
    t with
    theta = copy;
    frozen;
    name = Option.value ~default:t.name name;
    noise_scale = Option.value ~default:t.noise_scale noise_scale;
    halluc_rate = Option.value ~default:t.halluc_rate halluc_rate;
  }

(* ------------------------------------------------------------------ *)
(* Scoring *)

(** Parameter keys contributing to an action's logit. *)
let keys_of_action (a : Actions.action) : string list =
  match a with
  | Actions.Apply_rule (r, _) ->
    let family =
      match Veriopt_passes.Instcombine.find_rule r with
      | Some rule -> rule.Veriopt_passes.Rewrite.family
      | None -> "fold"
    in
    [ "rule:" ^ r; "family:" ^ family; "act:rule" ]
  | Actions.Apply_pass p -> [ "pass:" ^ Actions.pass_name p; "act:pass" ]
  | Actions.Unsound (k, _) -> [ "unsound:" ^ Actions.unsound_name k; "act:unsound" ]
  | Actions.Corrupt c -> [ "corrupt:" ^ Actions.corruption_name c; "act:corrupt" ]
  | Actions.Copy_input -> [ "act:copy" ]
  | Actions.Stop -> [ "act:stop" ]

(* Deterministic input-dependent pseudo-noise in [-1, 1]. *)
let noise (t : t) ~(sample_id : int) (signature : string) : float =
  let h = Hashtbl.hash (sample_id, signature, "veriopt-noise") in
  (float_of_int (h land 0xffff) /. 32768.) -. 1.0 |> fun x -> x *. t.noise_scale

type avail = { action : Actions.action; keys : string list }

let score (t : t) ~sample_id (a : avail) : float =
  List.fold_left (fun acc k -> acc +. get t k) 0. a.keys
  +. noise t ~sample_id (Actions.action_to_string a.action)

(** One recorded decision: the probabilities over the available choices and
    which was taken.  Sufficient statistics for d log pi / d theta. *)
type step = { keys : string list array; probs : float array; chosen : int }

let softmax temperature scores =
  let m = Array.fold_left max neg_infinity scores in
  let exps = Array.map (fun s -> exp ((s -. m) /. max 1e-6 temperature)) scores in
  let z = Array.fold_left ( +. ) 0. exps in
  Array.map (fun e -> e /. z) exps

(** Choose among available actions: greedy when [rng] is [None]. *)
let choose (t : t) ~(rng : Random.State.t option) ~sample_id (avail : avail list) : int * step =
  let arr = Array.of_list avail in
  let scores = Array.map (score t ~sample_id) arr in
  let probs = softmax t.temperature scores in
  let chosen =
    match rng with
    | None ->
      (* greedy: argmax *)
      let best = ref 0 in
      Array.iteri (fun i s -> if s > scores.(!best) then best := i) scores;
      !best
    | Some rng ->
      let x = Random.State.float rng 1.0 in
      let rec pick i acc =
        if i >= Array.length probs - 1 then i
        else if acc +. probs.(i) >= x then i
        else pick (i + 1) (acc +. probs.(i))
      in
      pick 0 0.
  in
  (chosen, { keys = Array.map (fun (a : avail) -> a.keys) arr; probs; chosen })

(* ------------------------------------------------------------------ *)
(* Rollouts *)

let max_edit_steps = 24

(** Available actions at one point of an attempt.  [mask] removes one action
    signature (used when correcting a diagnosed mistake). *)
let available ?(mask = []) ?(size_limit = max_int) ~(first : bool) (modul : Ast.modul)
    (f : Ast.func) : avail list =
  let rules =
    Actions.enumerate_rule_sites modul f
    |> List.map (fun (r, site) -> { action = Actions.Apply_rule (r, site); keys = keys_of_action (Actions.Apply_rule (r, site)) })
  in
  let passes =
    (* local memory cleanups are always in scope; whole-function passes only
       fit on small functions (capacity limit) *)
    List.filter_map
      (fun (p, global) ->
        if (not (global && Veriopt_cost.Icount.of_func f > size_limit)) && Actions.pass_applicable modul f p
        then Some { action = Actions.Apply_pass p; keys = keys_of_action (Actions.Apply_pass p) }
        else None)
      [
        (Actions.Mem2reg, true);
        (Actions.Simplifycfg, true);
        (Actions.Forward_loads, false);
        (Actions.Dead_stores, false);
      ]
  in
  let unsound =
    List.concat_map
      (fun k ->
        let n = Actions.unsound_sites f k in
        List.init (min n 3) (fun i ->
            { action = Actions.Unsound (k, i); keys = keys_of_action (Actions.Unsound (k, i)) }))
      [
        Actions.Wrong_constant;
        Actions.Flip_operands;
        Actions.Predicate_flip;
        Actions.Drop_store;
        Actions.Bogus_flag;
        Actions.Width_confusion;
        Actions.Stale_forward;
      ]
  in
  let corrupt =
    List.map
      (fun c -> { action = Actions.Corrupt c; keys = keys_of_action (Actions.Corrupt c) })
      Actions.all_corruptions
  in
  let base =
    rules @ passes @ unsound @ corrupt
    @ [ { action = Actions.Stop; keys = keys_of_action Actions.Stop } ]
    @ if first then [ { action = Actions.Copy_input; keys = keys_of_action Actions.Copy_input } ] else []
  in
  List.filter (fun a -> not (List.mem (Actions.action_to_string a.action) mask)) base

type attempt = {
  out_func : Ast.func;
  corruption : Actions.corruption option;
  copied : bool;
  evidence : Diag.self_evidence;
  attempt_steps : step list;
  actions_taken : Actions.action list;
}

let rollout_attempt (t : t) ~(rng : Random.State.t option) ~sample_id ?(mask = [])
    (modul : Ast.modul) (f : Ast.func) : attempt =
  let steps = ref [] in
  let actions = ref [] in
  let evidence = ref Diag.Saw_only_sound in
  let corruption = ref None in
  let copied = ref false in
  let cur = ref f in
  let continue_ = ref true in
  let n = ref 0 in
  while !continue_ && !n < max_edit_steps do
    incr n;
    let avail = available ~mask ~size_limit:t.pass_size_limit ~first:(!n = 1) modul !cur in
    (* irreducible hallucination floor: a deterministic per-(input, step)
       coin occasionally overrides the policy with a corrupt/unsound move *)
    let forced =
      let h =
        float_of_int (Hashtbl.hash (sample_id, !n, t.name, "halluc") land 0xffff) /. 65536.
      in
      if h < t.halluc_rate then begin
        let bad =
          List.mapi (fun i a -> (i, a)) avail
          |> List.filter (fun (_, (a : avail)) ->
                 match a.action with
                 | Actions.Corrupt _ | Actions.Unsound _ -> true
                 | _ -> false)
        in
        match bad with
        | [] -> None
        | _ ->
          let pick = Hashtbl.hash (sample_id, !n, "halluc-pick") mod List.length bad in
          Some (fst (List.nth bad pick))
      end
      else None
    in
    let idx, step =
      match forced with
      | Some i ->
        let arr = Array.of_list avail in
        let scores = Array.map (score t ~sample_id) arr in
        let probs = softmax t.temperature scores in
        (i, { keys = Array.map (fun (a : avail) -> a.keys) arr; probs; chosen = i })
      | None -> choose t ~rng ~sample_id avail
    in
    steps := step :: !steps;
    let a = (List.nth avail idx).action in
    actions := a :: !actions;
    match a with
    | Actions.Stop -> continue_ := false
    | Actions.Copy_input ->
      copied := true;
      continue_ := false
    | Actions.Corrupt c ->
      corruption := Some c;
      evidence := Diag.Saw_corruption c;
      continue_ := false
    | Actions.Unsound (k, i) ->
      cur := Actions.apply_unsound !cur k i;
      evidence := (match !evidence with Diag.Saw_corruption _ -> !evidence | _ -> Diag.Saw_unsound k)
    | Actions.Apply_rule (r, site) -> cur := Actions.apply_rule modul !cur r site
    | Actions.Apply_pass p -> cur := Actions.apply_pass modul !cur p
  done;
  {
    out_func = (if !copied then f else !cur);
    corruption = !corruption;
    copied = !copied;
    evidence = !evidence;
    attempt_steps = List.rev !steps;
    actions_taken = List.rev !actions;
  }

(* ------------------------------------------------------------------ *)
(* Full generation *)

type generation = {
  completion : string; (* rendered model output *)
  answer_text : string option; (* parsed back out of the completion *)
  steps : step list; (* every decision, for the policy gradient *)
  claimed : Diag.error_class option; (* augmented mode self-verdict *)
  evidence : Diag.self_evidence;
  copied : bool;
  first_attempt : attempt;
  final_attempt : attempt;
}

let attempt_text (_t : t) ~sample_id (a : attempt) : string =
  let text = Printer.func_to_string a.out_func in
  match a.corruption with
  | None -> text
  | Some c ->
    let rng = Random.State.make [| sample_id; Hashtbl.hash (Actions.corruption_name c) |] in
    Actions.corrupt_text rng c text

let diag_avail (ev : Diag.self_evidence) : avail list =
  List.map
    (fun c ->
      {
        action = Actions.Stop (* placeholder; keys drive everything *);
        keys = [ Fmt.str "diag:%s:%s" (Diag.evidence_name ev) (Diag.class_name c) ];
      })
    Diag.all_classes

let format_avail : avail list =
  [
    { action = Actions.Stop; keys = [ "format:ok" ] };
    { action = Actions.Stop; keys = [ "format:bad" ] };
  ]

let generate (t : t) ~(mode : Prompt.mode) ~(rng : Random.State.t option) ~(sample_id : int)
    (modul : Ast.modul) (f : Ast.func) : generation =
  let steps = ref [] in
  let push s = steps := !steps @ [ s ] in
  (* format compliance decision *)
  let fmt_idx, fmt_step = choose t ~rng ~sample_id format_avail in
  push fmt_step;
  let well_formed = fmt_idx = 0 in
  let a1 = rollout_attempt t ~rng ~sample_id modul f in
  List.iter push a1.attempt_steps;
  match mode with
  | Prompt.Generic ->
    let answer = attempt_text t ~sample_id a1 in
    let completion = Prompt.render { Prompt.think = None; answer; well_formed } in
    {
      completion;
      answer_text = Prompt.answer_of completion;
      steps = !steps;
      claimed = None;
      evidence = a1.evidence;
      copied = a1.copied;
      first_attempt = a1;
      final_attempt = a1;
    }
  | Prompt.Augmented ->
    (* self-diagnosis of the first attempt *)
    let d_idx, d_step = choose t ~rng ~sample_id (diag_avail a1.evidence) in
    push d_step;
    let claimed = List.nth Diag.all_classes d_idx in
    let attempt1_text = attempt_text t ~sample_id a1 in
    if claimed = Diag.C_ok then begin
      let completion =
        Prompt.render { Prompt.think = Some (attempt1_text, None); answer = attempt1_text; well_formed }
      in
      {
        completion;
        answer_text = Prompt.answer_of completion;
        steps = !steps;
        claimed = Some claimed;
        evidence = a1.evidence;
        copied = a1.copied;
        first_attempt = a1;
        final_attempt = a1;
      }
    end
    else begin
      (* the model believes its attempt failed: diagnose, then retry with
         the diagnosed action masked out *)
      let mask =
        match a1.evidence with
        | Diag.Saw_corruption c -> [ Actions.action_to_string (Actions.Corrupt c) ]
        | Diag.Saw_unsound k ->
          List.init 3 (fun i -> Actions.action_to_string (Actions.Unsound (k, i)))
        | Diag.Saw_only_sound -> []
      in
      let a2 = rollout_attempt t ~rng ~sample_id ~mask modul f in
      List.iter push a2.attempt_steps;
      let answer = attempt_text t ~sample_id a2 in
      let diag_msg = Diag.message_of_class claimed in
      let completion =
        Prompt.render
          { Prompt.think = Some (attempt1_text, Some diag_msg); answer; well_formed }
      in
      {
        completion;
        answer_text = Prompt.answer_of completion;
        steps = !steps;
        claimed = Some claimed;
        evidence = a1.evidence;
        copied = a2.copied;
        first_attempt = a1;
        final_attempt = a2;
      }
    end

(** The self-diagnosis head: the model's emulation of Alive2 feedback.

    During correction-augmented training the model must (i) judge whether
    its own first attempt is OK or ERR, and (ii) when ERR, produce a
    diagnostic message whose similarity to Alive2's real message is scored
    by BLEU (the paper's Eq. 2).  The head is a learnable table from
    "what kind of risky action did I just take" to a claimed verdict. *)

(* Error classes aligned with the verdict layer's diagnostics. *)
type error_class =
  | C_ok
  | C_syntax
  | C_value_mismatch
  | C_more_poisonous
  | C_trace
  | C_memory
  | C_other

let all_classes =
  [ C_ok; C_syntax; C_value_mismatch; C_more_poisonous; C_trace; C_memory; C_other ]

let class_name = function
  | C_ok -> "ok"
  | C_syntax -> "syntax"
  | C_value_mismatch -> "value-mismatch"
  | C_more_poisonous -> "more-poisonous"
  | C_trace -> "trace"
  | C_memory -> "memory"
  | C_other -> "other"

(** The message the model emits for a claimed class; phrased like the
    verifier's diagnostics so that a correct claim earns high BLEU. *)
let message_of_class = function
  | C_ok -> "Transformation seems to be correct!"
  | C_syntax -> "ERROR: invalid IR"
  | C_value_mismatch -> "ERROR: Value mismatch\nExample:\nSource value and target value differ"
  | C_more_poisonous -> "ERROR: Target is more poisonous than source"
  | C_trace -> "ERROR: Mismatch in observable function calls"
  | C_memory -> "ERROR: Mismatch in stored memory"
  | C_other -> "ERROR: Target does not refine source"

(** What the model can observe about its own attempt: the riskiest thing it
    did.  This is the conditioning context of the diagnosis head. *)
type self_evidence =
  | Saw_corruption of Actions.corruption
  | Saw_unsound of Actions.unsound_edit
  | Saw_only_sound

let evidence_name = function
  | Saw_corruption c -> "corrupt:" ^ Actions.corruption_name c
  | Saw_unsound k -> "unsound:" ^ Actions.unsound_name k
  | Saw_only_sound -> "sound"

(** The objectively right claim for each kind of risky action — what a
    perfectly calibrated diagnosis head would converge to. *)
let oracle_class = function
  | Saw_corruption _ -> C_syntax
  | Saw_unsound Actions.Wrong_constant -> C_value_mismatch
  | Saw_unsound Actions.Flip_operands -> C_value_mismatch
  | Saw_unsound Actions.Predicate_flip -> C_value_mismatch
  | Saw_unsound Actions.Drop_store -> C_memory
  | Saw_unsound Actions.Bogus_flag -> C_more_poisonous
  | Saw_unsound Actions.Width_confusion -> C_value_mismatch
  | Saw_unsound Actions.Stale_forward -> C_value_mismatch
  | Saw_only_sound -> C_ok

(** Map a verifier verdict message to an error class, for scoring claims. *)
let class_of_verdict_message (category : [ `Equivalent | `Semantic | `Syntax | `Inconclusive ])
    (message : string) : error_class =
  let contains sub =
    let n = String.length message and m = String.length sub in
    let rec go i = i + m <= n && (String.sub message i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  match category with
  | `Equivalent -> C_ok
  | `Syntax -> C_syntax
  | `Inconclusive -> C_other
  | `Semantic ->
    if contains "more poisonous" then C_more_poisonous
    else if contains "Value mismatch" then C_value_mismatch
    else if contains "function calls" then C_trace
    else if contains "stored memory" then C_memory
    else C_other

(** Prompt templates (the paper's Figs. 1 and 2) and completion parsing. *)

type mode = Generic | Augmented

val generic_template : string -> string
(** Fig. 1: the one-shot generic prompt around the input IR. *)

val augmented_template : string -> string
(** Fig. 2: the <think>-augmented prompt used by the warm-up and
    correctness stages. *)

type output = {
  think : (string * string option) option;
      (** first attempt and optional self-diagnosis; [None] in generic mode *)
  answer : string;
  well_formed : bool;  (** whether the <answer> wrapper is emitted correctly *)
}

val render : output -> string

val extract_tag : string -> string -> string option
val format_ok : string -> bool
(** The [t_i] term of Eq. 1. *)

val answer_of : string -> string option
val think_of : string -> string option

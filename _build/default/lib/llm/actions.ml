(** The generation space of the surrogate model.

    A candidate output is produced by a sequence of actions over the input
    function: sound rewrites (the instcombine rule catalog plus the
    mem2reg / simplifycfg passes), unsound "hallucination" edits, or syntax
    corruptions; terminated by [Stop] or short-circuited by [Copy_input].
    This gives the policy exactly the failure modes the paper's Tables I/II
    categorize — invalid IR, semantically wrong IR, trivial copies, and
    genuinely optimized code — with a differentiable probability for each.

    What the surrogate abstracts away is token-by-token text generation;
    what it preserves is the RL problem: a stochastic generator over
    programs whose reward comes only from the verifier. *)

open Veriopt_ir
open Ast
module Rewrite = Veriopt_passes.Rewrite
module Instcombine = Veriopt_passes.Instcombine
module Fold = Veriopt_passes.Fold

type corruption =
  | Undefined_value_ref (* reference to a %var that doesn't exist *)
  | Type_mismatch (* inconsistent type annotation *)
  | Missing_terminator (* a block loses its terminator *)
  | Truncated_output (* the text stops mid-function *)
  | Garbage_token (* a nonsense token in the middle *)

let corruption_name = function
  | Undefined_value_ref -> "undefined-value"
  | Type_mismatch -> "type-mismatch"
  | Missing_terminator -> "missing-terminator"
  | Truncated_output -> "truncated-output"
  | Garbage_token -> "garbage-token"

let all_corruptions =
  [ Undefined_value_ref; Type_mismatch; Missing_terminator; Truncated_output; Garbage_token ]

type unsound_edit =
  | Wrong_constant (* off-by-one in a constant *)
  | Flip_operands (* swap operands of a non-commutative op *)
  | Predicate_flip (* slt -> sle, eq -> ne, ... *)
  | Drop_store (* delete a store *)
  | Bogus_flag (* add an unjustified nsw *)
  | Width_confusion (* sext -> zext *)
  | Stale_forward (* replace a load with an unrelated stored value *)

let unsound_name = function
  | Wrong_constant -> "wrong-constant"
  | Flip_operands -> "flip-operands"
  | Predicate_flip -> "predicate-flip"
  | Drop_store -> "drop-store"
  | Bogus_flag -> "bogus-flag"
  | Width_confusion -> "width-confusion"
  | Stale_forward -> "stale-forward"

type pass_action = Mem2reg | Simplifycfg | Forward_loads | Dead_stores

let pass_name = function
  | Mem2reg -> "mem2reg"
  | Simplifycfg -> "simplifycfg"
  | Forward_loads -> "forward-loads"
  | Dead_stores -> "dead-stores"

type action =
  | Apply_rule of string * var (* rule name, site *)
  | Apply_pass of pass_action
  | Unsound of unsound_edit * int (* deterministic site index *)
  | Corrupt of corruption
  | Copy_input
  | Stop

let action_to_string = function
  | Apply_rule (r, s) -> Fmt.str "rule:%s@%s" r s
  | Apply_pass p -> Fmt.str "pass:%s" (pass_name p)
  | Unsound (k, i) -> Fmt.str "unsound:%s@%d" (unsound_name k) i
  | Corrupt c -> Fmt.str "corrupt:%s" (corruption_name c)
  | Copy_input -> "copy"
  | Stop -> "stop"

(* ------------------------------------------------------------------ *)
(* Enumeration of available actions *)

let enumerate_rule_sites (modul : modul) (f : func) : (string * var) list =
  let ctx = Rewrite.make_ctx modul f in
  List.concat_map
    (fun b ->
      List.concat_map
        (fun ni ->
          match ni.name with
          | None -> []
          | Some site ->
            let folds =
              match Fold.fold_instr ni.instr with Some _ -> [ ("constant-fold", site) ] | None -> []
            in
            folds
            @ List.filter_map
                (fun (r : Rewrite.rule) ->
                  if not r.Rewrite.sound then None
                  else
                    match r.Rewrite.apply ctx ni with
                    | Some _ -> Some (r.Rewrite.rule_name, site)
                    | None -> None)
                Instcombine.all_rules)
        b.instrs)
    f.blocks

let pass_applicable (modul : modul) (f : func) (p : pass_action) : bool =
  ignore modul;
  match p with
  | Mem2reg -> Veriopt_passes.Mem2reg.promotable_allocas f <> []
  | Simplifycfg -> snd (Veriopt_passes.Simplifycfg.run f) <> []
  | Forward_loads -> snd (Veriopt_passes.Rules_mem.forward_loads f) <> []
  | Dead_stores -> snd (Veriopt_passes.Rules_mem.eliminate_dead_stores f) <> []

(* Sites for unsound edits, deterministically indexed. *)
let unsound_sites (f : func) (k : unsound_edit) : int =
  let count p =
    List.fold_left
      (fun acc b -> List.fold_left (fun acc ni -> if p ni then acc + 1 else acc) acc b.instrs)
      0 f.blocks
  in
  match k with
  | Wrong_constant ->
    count (fun ni ->
        List.exists (function Const (CInt _) -> true | _ -> false) (operands_of_instr ni.instr))
  | Flip_operands ->
    count (fun ni ->
        match ni.instr with
        | Binop { op; _ } -> not (binop_is_commutative op)
        | _ -> false)
  | Predicate_flip -> count (fun ni -> match ni.instr with Icmp _ -> true | _ -> false)
  | Drop_store -> count (fun ni -> match ni.instr with Store _ -> true | _ -> false)
  | Bogus_flag ->
    count (fun ni ->
        match ni.instr with
        | Binop { op = Add | Sub | Mul | Shl; flags; _ } -> not flags.nsw
        | _ -> false)
  | Width_confusion -> count (fun ni -> match ni.instr with Cast { op = SExt; _ } -> true | _ -> false)
  | Stale_forward -> count (fun ni -> match ni.instr with Load _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Action application *)

(* Apply a mutation to the [idx]-th instruction satisfying [p]. *)
let mutate_nth (f : func) (p : named_instr -> bool) (idx : int) (g : named_instr -> named_instr option) : func
    =
  let seen = ref (-1) in
  Veriopt_ir.Builder.map_blocks f (fun b ->
      {
        b with
        instrs =
          List.filter_map
            (fun ni ->
              if p ni then begin
                incr seen;
                if !seen = idx then g ni else Some ni
              end
              else Some ni)
            b.instrs;
      })

let bump_constant (delta : int64) = function
  | Const (CInt { width; value }) -> Const (CInt { width; value = Bits.mask width (Int64.add value delta) })
  | op -> op

let apply_unsound (f : func) (k : unsound_edit) (idx : int) : func =
  match k with
  | Wrong_constant ->
    mutate_nth f
      (fun ni ->
        List.exists (function Const (CInt _) -> true | _ -> false) (operands_of_instr ni.instr))
      idx
      (fun ni ->
        let first = ref true in
        let fix op =
          match op with
          | Const (CInt _) when !first ->
            first := false;
            bump_constant 1L op
          | _ -> op
        in
        Some { ni with instr = map_instr_operands fix ni.instr })
  | Flip_operands ->
    mutate_nth f
      (fun ni ->
        match ni.instr with
        | Binop { op; _ } -> not (binop_is_commutative op)
        | _ -> false)
      idx
      (fun ni ->
        match ni.instr with
        | Binop b -> Some { ni with instr = Binop { b with lhs = b.rhs; rhs = b.lhs } }
        | _ -> Some ni)
  | Predicate_flip ->
    mutate_nth f
      (fun ni -> match ni.instr with Icmp _ -> true | _ -> false)
      idx
      (fun ni ->
        match ni.instr with
        | Icmp i ->
          let flipped =
            match i.pred with
            | Slt -> Sle
            | Sle -> Slt
            | Sgt -> Sge
            | Sge -> Sgt
            | Ult -> Ule
            | Ule -> Ult
            | Ugt -> Uge
            | Uge -> Ugt
            | Eq -> Ne
            | Ne -> Eq
          in
          Some { ni with instr = Icmp { i with pred = flipped } }
        | _ -> Some ni)
  | Drop_store ->
    mutate_nth f (fun ni -> match ni.instr with Store _ -> true | _ -> false) idx (fun _ -> None)
  | Bogus_flag ->
    mutate_nth f
      (fun ni ->
        match ni.instr with
        | Binop { op = Add | Sub | Mul | Shl; flags; _ } -> not flags.nsw
        | _ -> false)
      idx
      (fun ni ->
        match ni.instr with
        | Binop b -> Some { ni with instr = Binop { b with flags = { b.flags with nsw = true } } }
        | _ -> Some ni)
  | Width_confusion ->
    mutate_nth f
      (fun ni -> match ni.instr with Cast { op = SExt; _ } -> true | _ -> false)
      idx
      (fun ni ->
        match ni.instr with
        | Cast c -> Some { ni with instr = Cast { c with op = ZExt } }
        | _ -> Some ni)
  | Stale_forward -> (
    (* replace the idx-th load's result with the value of the first store in
       the function, regardless of aliasing: a plausible-looking but wrong
       forwarding *)
    let stored =
      List.find_map
        (fun b ->
          List.find_map
            (fun ni -> match ni.instr with Store { value; _ } -> Some value | _ -> None)
            b.instrs)
        f.blocks
    in
    match stored with
    | None -> f
    | Some value ->
      let target = ref None in
      let seen = ref (-1) in
      List.iter
        (fun b ->
          List.iter
            (fun ni ->
              match (ni.name, ni.instr) with
              | Some n, Load { ty; _ } ->
                incr seen;
                if !seen = idx then target := Some (n, ty)
              | _ -> ())
            b.instrs)
        f.blocks;
      match !target with
      | Some (n, Types.Int w) -> (
        (* only forward when widths agree, to stay parseable *)
        match value with
        | Const (CInt { width; _ }) when width <> w -> f
        | _ ->
          let f = Builder.substitute_operand f ~from:n ~to_:value in
          Builder.replace_instr f ~name:n ~with_:[]
      )
      | _ -> f)

(* Sound actions run DCE afterwards, mirroring the instcombine driver: the
   model "writes" code with the dead remnants already cleaned up.  Unsound
   edits deliberately do not. *)
let dce f = fst (Veriopt_passes.Dce.run f)

let apply_pass (modul : modul) (f : func) (p : pass_action) : func =
  ignore modul;
  dce
    (match p with
    (* a small model only manages partial promotion in one shot *)
    | Mem2reg -> fst (Veriopt_passes.Mem2reg.run ~limit:2 f)
    | Simplifycfg -> fst (Veriopt_passes.Simplifycfg.run f)
    | Forward_loads -> fst (Veriopt_passes.Rules_mem.forward_loads f)
    | Dead_stores -> fst (Veriopt_passes.Rules_mem.eliminate_dead_stores f))

let apply_rule_raw (modul : modul) (f : func) (rule_name : string) (site : var) : func =
  if rule_name = "constant-fold" then begin
    let target =
      List.find_map
        (fun b -> List.find_map (fun ni -> if ni.name = Some site then Some ni else None) b.instrs)
        f.blocks
    in
    match target with
    | Some ni -> (
      match Fold.fold_instr ni.instr with
      | Some op -> Instcombine.apply_rewrite f site (Rewrite.Value op)
      | None -> f)
    | None -> f
  end
  else
    match Instcombine.find_rule rule_name with
    | None -> f
    | Some r -> (
      let ctx = Rewrite.make_ctx modul f in
      let target =
        List.find_map
          (fun b -> List.find_map (fun ni -> if ni.name = Some site then Some ni else None) b.instrs)
          f.blocks
      in
      match target with
      | Some ni -> (
        match r.Rewrite.apply ctx ni with
        | Some rw -> Instcombine.apply_rewrite f site rw
        | None -> f)
      | None -> f)

let apply_rule (modul : modul) (f : func) (rule_name : string) (site : var) : func =
  dce (apply_rule_raw modul f rule_name site)

(* ------------------------------------------------------------------ *)
(* Text corruptions, applied at render time *)

(* Apply [f] to the first line at-or-after a random start position that it
   actually changes, wrapping around; falls back to appending garbage when no
   line is corruptible, so a corruption always corrupts. *)
let corrupt_some_line (rng : Random.State.t) (lines : string list) (f : string -> string option) :
    string =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let start = if n <= 1 then 0 else Random.State.int rng n in
  let rec go k =
    if k >= n then None
    else
      let i = (start + k) mod n in
      match f arr.(i) with
      | Some l' ->
        arr.(i) <- l';
        Some ()
      | None -> go (k + 1)
  in
  (match go 0 with
  | Some () -> ()
  | None -> if n > 0 then arr.(n - 1) <- arr.(n - 1) ^ " ??");
  String.concat "\n" (Array.to_list arr)

let corrupt_text (rng : Random.State.t) (c : corruption) (text : string) : string =
  let lines = String.split_on_char '\n' text in
  match c with
  | Undefined_value_ref ->
    (* rename the first operand use on an instruction line *)
    corrupt_some_line rng lines (fun l ->
        match String.index_opt l '=' with
        | Some eq -> (
          match String.index_from_opt l eq '%' with
          | Some p ->
            let rec skip j =
              if j < String.length l && Veriopt_nlp.Tokenizer.is_word_char l.[j] then skip (j + 1)
              else j
            in
            let e = skip (p + 1) in
            Some (String.sub l 0 p ^ "%undef_val" ^ String.sub l e (String.length l - e))
          | None -> None)
        | None -> None)
  | Type_mismatch ->
    (* swap one iN annotation for a different width *)
    corrupt_some_line rng lines (fun l ->
        let swap_at sub rep =
          let n = String.length l and m = String.length sub in
          let rec go i =
            if i + m > n then None
            else if String.sub l i m = sub then
              Some (String.sub l 0 i ^ rep ^ String.sub l (i + m) (n - i - m))
            else go (i + 1)
          in
          go 0
        in
        match swap_at " i32 " " i64 " with
        | Some l' -> Some l'
        | None -> (
          match swap_at " i64 " " i32 " with
          | Some l' -> Some l'
          | None -> (
            match swap_at " i16 " " i64 " with
            | Some l' -> Some l'
            | None -> swap_at " i8 " " i64 ")))
  | Missing_terminator ->
    String.concat "\n"
      (List.filter
         (fun l ->
           let t = String.trim l in
           not
             (String.length t >= 3
             && (String.sub t 0 3 = "ret" || (String.length t >= 2 && String.sub t 0 2 = "br"))))
         lines)
  | Truncated_output -> String.sub text 0 (String.length text / 2)
  | Garbage_token ->
    corrupt_some_line rng lines (fun l ->
        if String.trim l = "" || String.trim l = "}" then None else Some (l ^ " ??"))

(** The generation space of the surrogate model: sound rewrites, unsound
    "hallucination" edits, syntax corruptions, copy, stop.  These are the
    moves whose composition spans the paper's verdict categories. *)

open Veriopt_ir

type corruption =
  | Undefined_value_ref
  | Type_mismatch
  | Missing_terminator
  | Truncated_output
  | Garbage_token

val corruption_name : corruption -> string
val all_corruptions : corruption list

type unsound_edit =
  | Wrong_constant
  | Flip_operands
  | Predicate_flip
  | Drop_store
  | Bogus_flag
  | Width_confusion
  | Stale_forward

val unsound_name : unsound_edit -> string

type pass_action = Mem2reg | Simplifycfg | Forward_loads | Dead_stores

val pass_name : pass_action -> string

type action =
  | Apply_rule of string * Ast.var
  | Apply_pass of pass_action
  | Unsound of unsound_edit * int
  | Corrupt of corruption
  | Copy_input
  | Stop

val action_to_string : action -> string

(** {1 Enumeration} *)

val enumerate_rule_sites : Ast.modul -> Ast.func -> (string * Ast.var) list
val pass_applicable : Ast.modul -> Ast.func -> pass_action -> bool
val unsound_sites : Ast.func -> unsound_edit -> int

(** {1 Application} *)

val apply_unsound : Ast.func -> unsound_edit -> int -> Ast.func
val apply_pass : Ast.modul -> Ast.func -> pass_action -> Ast.func
val apply_rule : Ast.modul -> Ast.func -> string -> Ast.var -> Ast.func
(** Sound actions run DCE afterwards, mirroring the instcombine driver. *)

val corrupt_text : Random.State.t -> corruption -> string -> string
(** Render-time corruption of the output text; always changes it. *)

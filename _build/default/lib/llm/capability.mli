(** Capability profiles: parameter-count surrogates.

    A single scalar kappa in (0, 1] sets a policy's competence prior — rule
    knowledge (with out-of-capacity rules frozen), hallucination floor,
    format discipline, and the size limit on whole-function transforms.
    kappa = 0.5 is calibrated to reproduce the paper's Table I base-model
    distribution; the zoo maps the Fig. 5 baseline family. *)

val frac : string -> float
val known_rule : float -> string -> bool
val known_pass : float -> string -> bool

val init : ?name:string -> float -> Model.t

val zoo : (string * float) list
(** The Fig. 5 models in parameter-size order, with their kappa. *)

val base_3b : unit -> Model.t
(** The pretrained Qwen2.5-3B-Instruct surrogate (kappa = 0.5). *)

val llm_compiler_7b : unit -> Model.t
(** Compiler-emulation pretraining: near-perfect format compliance, frequent
    semantic drift, rare exact matches. *)

val of_zoo : string -> Model.t

(** The self-diagnosis head: the model's emulation of Alive2 feedback,
    scored by the paper's Eq. 2. *)

type error_class =
  | C_ok
  | C_syntax
  | C_value_mismatch
  | C_more_poisonous
  | C_trace
  | C_memory
  | C_other

val all_classes : error_class list
val class_name : error_class -> string

val message_of_class : error_class -> string
(** The diagnostic text the model emits for a claimed class; phrased like
    the verifier's own messages so a correct claim earns high BLEU. *)

(** What the model can observe about its own attempt. *)
type self_evidence =
  | Saw_corruption of Actions.corruption
  | Saw_unsound of Actions.unsound_edit
  | Saw_only_sound

val evidence_name : self_evidence -> string

val oracle_class : self_evidence -> error_class
(** The objectively right claim per risky-action kind: what a calibrated
    head converges to. *)

val class_of_verdict_message :
  [ `Equivalent | `Semantic | `Syntax | `Inconclusive ] -> string -> error_class

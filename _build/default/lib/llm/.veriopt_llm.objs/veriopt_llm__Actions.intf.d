lib/llm/actions.mli: Ast Random Veriopt_ir

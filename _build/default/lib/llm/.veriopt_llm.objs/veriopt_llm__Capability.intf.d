lib/llm/capability.mli: Model

lib/llm/diag.ml: Actions String

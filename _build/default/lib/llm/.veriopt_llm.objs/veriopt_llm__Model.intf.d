lib/llm/model.mli: Actions Diag Hashtbl Prompt Random Veriopt_ir

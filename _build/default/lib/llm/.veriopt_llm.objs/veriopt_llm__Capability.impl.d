lib/llm/capability.ml: Float Hashtbl List Model Veriopt_passes

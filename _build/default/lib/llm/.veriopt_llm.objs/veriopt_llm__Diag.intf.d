lib/llm/diag.mli: Actions

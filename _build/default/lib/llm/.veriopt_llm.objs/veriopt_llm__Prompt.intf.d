lib/llm/prompt.mli:

lib/llm/actions.ml: Array Ast Bits Builder Fmt Int64 List Random String Types Veriopt_ir Veriopt_nlp Veriopt_passes

lib/llm/prompt.ml: Buffer String

lib/llm/model.ml: Actions Array Diag Fmt Hashtbl List Option Printer Prompt Random Veriopt_cost Veriopt_ir Veriopt_passes

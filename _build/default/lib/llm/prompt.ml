(** Prompt templates (the paper's Fig. 1 and Fig. 2) and output assembly.

    The generic template asks for the optimized IR inside [<answer>] tags;
    the augmented template adds a [<think>] section holding a first attempt
    and, when that attempt is wrong, an Alive2-style self-diagnosis followed
    by the corrected answer. *)

type mode = Generic | Augmented

let generic_template (ir : string) : string =
  String.concat "\n"
    [
      "You are a compiler optimization expert. Apply peephole optimizations";
      "to the following LLVM IR function, preserving its semantics exactly.";
      "Reply with the optimized IR inside <answer> </answer> tags.";
      "";
      "[One-shot example]";
      "Input:";
      "define i32 @ex(i32 %x) {";
      "entry:";
      "  %r = add i32 %x, 0";
      "  ret i32 %r";
      "}";
      "<answer>";
      "define i32 @ex(i32 %x) {";
      "entry:";
      "  ret i32 %x";
      "}";
      "</answer>";
      "";
      "Input:";
      ir;
    ]

let augmented_template (ir : string) : string =
  String.concat "\n"
    [
      "You are a compiler optimization expert. Apply peephole optimizations";
      "to the following LLVM IR function, preserving its semantics exactly.";
      "First reason inside <think> </think>: make an attempt, check it the";
      "way the Alive2 verifier would, and diagnose any error you find.";
      "Then reply with the final optimized IR inside <answer> </answer> tags.";
      "";
      "Input:";
      ir;
    ]

(** Structured model output prior to rendering. *)
type output = {
  think : (string * string option) option;
      (** first attempt, and the self-diagnosis when the model thinks the
          attempt is wrong; [None] think section in generic mode *)
  answer : string;
  well_formed : bool; (** whether the <answer> wrapper is emitted correctly *)
}

let render (o : output) : string =
  let buf = Buffer.create 512 in
  (match o.think with
  | Some (attempt, diag) ->
    Buffer.add_string buf "<think>\n";
    Buffer.add_string buf attempt;
    (match diag with
    | Some d ->
      Buffer.add_string buf "\nSelf-check: ";
      Buffer.add_string buf d;
      Buffer.add_string buf "\n"
    | None -> Buffer.add_string buf "\nSelf-check: Transformation seems to be correct!\n");
    Buffer.add_string buf "</think>\n"
  | None -> ());
  if o.well_formed then begin
    Buffer.add_string buf "<answer>\n";
    Buffer.add_string buf o.answer;
    Buffer.add_string buf "\n</answer>"
  end
  else begin
    (* a malformed completion: missing closing tag, the most common LLM
       format failure *)
    Buffer.add_string buf "<answer>\n";
    Buffer.add_string buf o.answer
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing model completions, as the evaluation pipeline would *)

let find_sub (s : string) (sub : string) (from : int) : int option =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go from

(** Extract the text between tags; [None] when the format is violated. *)
let extract_tag (tag : string) (s : string) : string option =
  match find_sub s ("<" ^ tag ^ ">") 0 with
  | None -> None
  | Some start -> (
    let content_start = start + String.length tag + 2 in
    match find_sub s ("</" ^ tag ^ ">") content_start with
    | None -> None
    | Some stop -> Some (String.trim (String.sub s content_start (stop - content_start))))

(** Format compliance: the [t_i] term of the paper's reward (Eq. 1). *)
let format_ok (completion : string) : bool = extract_tag "answer" completion <> None

let answer_of (completion : string) : string option = extract_tag "answer" completion

let think_of (completion : string) : string option = extract_tag "think" completion
